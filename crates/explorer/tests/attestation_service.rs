//! End-to-end attestation-service workload, driven through the explorer's
//! differential pair: N client enclaves are built, then one `AttestService`
//! op routes every client's request through the signing enclave's wildcard
//! request queue, drains the service in waves, and batch-verifies the
//! evidence — on Sanctum and Keystone in lockstep, with the full invariant
//! kernel (including the fabric quota conservation check) running after
//! every step.

use sanctorum_explorer::{explorer_machine_config, DiffPair};
use sanctorum_hal::domain::CoreId;
use sanctorum_os::ops::{ImageKind, Op};

/// Eight clients through one signing enclave, verified, on both backends.
#[test]
fn eight_clients_attest_through_the_signing_enclave_on_both_backends() {
    let mut pair = DiffPair::boot(&explorer_machine_config(), None);
    let hart = CoreId::new(0);

    // Build eight client enclaves of mixed images (their measurements are
    // what the verifier ends up trusting — the workload attests whatever
    // the trace produced, exactly as the sampled op does mid-sweep).
    for i in 0..8u64 {
        let kind = if i % 2 == 0 { ImageKind::Hello } else { ImageKind::Compute };
        pair.step(hart, &Op::Build { kind, param: i })
            .unwrap_or_else(|v| panic!("build {i} violated an invariant: {v}"));
    }

    // `clients: 7` resolves to 1 + 7 % 8 = 8 clients. The op itself fails
    // the step (service-plane violation) if any selected client does not
    // end with a verified session, so a clean step *is* the assertion that
    // all eight attested.
    pair.step(hart, &Op::AttestService { clients: 7 })
        .unwrap_or_else(|v| panic!("attestation service violated an invariant: {v}"));

    for world in [&pair.sanctum, &pair.keystone] {
        assert_eq!(
            world.world.attested_clients,
            8,
            "[{}] expected all 8 clients attested",
            world.platform()
        );
    }

    // Re-attestation of the same population: the signing enclave's
    // signature cache and the verifier's chain cache serve the repeat
    // (deterministic challenges make every class a hit), and the invariant
    // kernel still holds across the second round.
    pair.step(hart, &Op::AttestService { clients: 7 })
        .unwrap_or_else(|v| panic!("re-attestation violated an invariant: {v}"));
    for world in [&pair.sanctum, &pair.keystone] {
        assert_eq!(world.world.attested_clients, 16, "[{}]", world.platform());
    }

    // The service keeps working with lifecycle churn around it: tear one
    // client down, build another, attest the new population.
    pair.step(hart, &Op::Teardown { slot: 2 }).expect("teardown");
    pair.step(hart, &Op::Build { kind: ImageKind::Hello, param: 40 })
        .expect("rebuild");
    pair.step(hart, &Op::AttestService { clients: 3 })
        .unwrap_or_else(|v| panic!("post-churn attestation violated an invariant: {v}"));
}

/// The service plane coexists with adversarial traffic: the mailbox
/// squatting / quota exhaustion attack runs between attestation rounds and
/// must stay blocked while the service keeps its throughput.
#[test]
fn attestation_service_survives_quota_exhaustion_attacks() {
    let mut pair = DiffPair::boot(&explorer_machine_config(), None);
    let hart = CoreId::new(0);
    for i in 0..4u64 {
        pair.step(hart, &Op::Build { kind: ImageKind::Hello, param: i })
            .expect("build");
    }
    pair.step(hart, &Op::AttestService { clients: 3 })
        .unwrap_or_else(|v| panic!("first round: {v}"));
    // AttackKind::ALL resolution: index 9 is MailboxQuotaExhaustion.
    pair.step(hart, &Op::Attack { kind: 9, slot: 1 })
        .unwrap_or_else(|v| panic!("quota attack not contained: {v}"));
    pair.step(hart, &Op::AttestService { clients: 3 })
        .unwrap_or_else(|v| panic!("post-attack round: {v}"));
    for world in [&pair.sanctum, &pair.keystone] {
        assert_eq!(world.world.attested_clients, 8, "[{}]", world.platform());
    }
}
