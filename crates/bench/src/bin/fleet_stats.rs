//! Fleet-scale attestation under sustained load: a multi-machine world
//! driven by per-machine worker threads against one shared concurrent
//! verifier, reporting throughput and latency percentiles, plus a
//! serial-versus-concurrent verifier comparison on pre-generated evidence.
//!
//! Two measurements:
//!
//! 1. **Sustained load** — every machine gets its own worker thread running
//!    `rounds` full attestation rounds (challenge → fabric round trip →
//!    verify → session filed) against one shared [`RemoteVerifier`] and
//!    [`SessionPool`]. Per-session latency (challenge issue → session filed)
//!    is recorded for every session; the report carries p50/p95/p99 and the
//!    aggregate sessions/second.
//! 2. **Verifier scaling** — attestation evidence is pre-generated over the
//!    fabric, then verified twice on fresh challenge sets: once serially on
//!    one thread, once split across `threads` threads sharing the verifier.
//!    The ratio is the concurrency speedup of the sharded verifier tier.
//!
//! Usage:
//!
//! ```text
//! fleet_stats [MACHINES] [--clients N] [--rounds N] [--verify-rounds N]
//!             [--threads N] [--out PATH] [--baseline PATH]
//! ```
//!
//! * `MACHINES` — fleet size (default 8, minimum 4).
//! * `--clients N` — client enclaves per machine (default 25).
//! * `--rounds N` — attestation rounds per machine (default 50; defaults
//!   give 8 × 25 × 50 = 10,000 sessions).
//! * `--verify-rounds N` — evidence-collection passes per verifier-scaling
//!   phase (default 4; each pass yields machines × clients items).
//! * `--threads N` — verifier threads in the concurrent phase (default 8).
//! * `--out PATH` — write the machine-readable result JSON.
//! * `--baseline PATH` — exit non-zero if sustained throughput regressed
//!   more than 2× (calibration-normalized) against the committed JSON.
//!
//! The concurrent verifier must beat the serial pass by ≥ 3× at 8 threads;
//! the gate only arms when the host actually has ≥ 8 CPUs (anything less
//! measures the scheduler, not the verifier).
//!
//! Run with: `cargo run --release -p sanctorum-bench --bin fleet_stats`

use sanctorum_bench::{boot_fleet, calibrate, extract_number};
use sanctorum_os::fleet::FleetMachine;
use sanctorum_verifier::{RemoteVerifier, SessionPool};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Throughput regression tolerance for the `--baseline` gate.
const MAX_REGRESSION_FACTOR: f64 = 2.0;
/// The concurrent verifier must beat one serial thread by at least this
/// factor at 8 threads (armed only when the host has ≥ 8 CPUs).
const MIN_VERIFIER_SPEEDUP: f64 = 3.0;
/// CPU floor below which the speedup gate stays informational.
const SPEEDUP_GATE_CPUS: usize = 8;

fn main() {
    let mut machines: usize = 8;
    let mut clients: usize = 25;
    let mut rounds: u64 = 50;
    let mut verify_rounds: usize = 4;
    let mut threads: usize = 8;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" => clients = args.next().and_then(|v| v.parse().ok()).expect("--clients N"),
            "--rounds" => rounds = args.next().and_then(|v| v.parse().ok()).expect("--rounds N"),
            "--verify-rounds" => {
                verify_rounds = args.next().and_then(|v| v.parse().ok()).expect("--verify-rounds N")
            }
            "--threads" => threads = args.next().and_then(|v| v.parse().ok()).expect("--threads N"),
            "--out" => out = Some(args.next().expect("--out PATH")),
            "--baseline" => baseline = Some(args.next().expect("--baseline PATH")),
            other => machines = other.parse().expect("MACHINES must be a number"),
        }
    }
    assert!(machines >= 4, "the fleet benchmark needs at least 4 machines");
    let threads = threads.max(1);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let calibration = calibrate();
    let boot_start = Instant::now();
    let fleet = boot_fleet(machines, clients);
    let boot_elapsed = boot_start.elapsed().as_secs_f64();
    let verifier = fleet.verifier([0x42; 32]);
    let (_ca, mut fleet_machines) = fleet.into_machines();

    // --- sustained load: one worker thread per machine ------------------
    let sessions = SessionPool::new();
    let start = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = fleet_machines
            .iter_mut()
            .map(|machine| {
                let verifier = &verifier;
                let sessions = &sessions;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(machine.client_count() * rounds as usize);
                    for round in 0..rounds {
                        let outcome = machine.attest_round(verifier, sessions, round);
                        assert_eq!(outcome.failed, 0, "no exchange may fail under honest load");
                        assert_eq!(outcome.replaced, 0, "unique tags never displace a session");
                        latencies.extend(outcome.latencies);
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("machine worker joins"))
            .collect()
    });
    let load_elapsed = start.elapsed().as_secs_f64();
    let established = sessions.len();
    assert_eq!(established, latencies.len());
    assert_eq!(established, machines * clients * rounds as usize);
    let sessions_per_second = established as f64 / load_elapsed;
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let p99 = percentile(&latencies, 99.0);
    let stats = verifier.stats();

    // --- verifier scaling: serial vs concurrent on fresh evidence -------
    // Challenges are single-use, so each phase gets its own evidence set;
    // the two sets are statistically identical (same clients, same chains).
    let serial_set = collect_evidence_rounds(&mut fleet_machines, &verifier, verify_rounds);
    let start = Instant::now();
    for (evidence, dh_public) in &serial_set {
        verifier
            .verify(evidence, dh_public)
            .expect("serial verification succeeds");
    }
    let serial_elapsed = start.elapsed().as_secs_f64();
    let serial_verifies_per_second = serial_set.len() as f64 / serial_elapsed;

    let concurrent_set = collect_evidence_rounds(&mut fleet_machines, &verifier, verify_rounds);
    let concurrent_total = concurrent_set.len();
    let chunk = concurrent_total.div_ceil(threads);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for slice in concurrent_set.chunks(chunk) {
            let verifier = &verifier;
            scope.spawn(move || {
                for (evidence, dh_public) in slice {
                    verifier
                        .verify(evidence, dh_public)
                        .expect("concurrent verification succeeds");
                }
            });
        }
    });
    let concurrent_elapsed = start.elapsed().as_secs_f64();
    let concurrent_verifies_per_second = concurrent_total as f64 / concurrent_elapsed;
    let verifier_speedup = concurrent_verifies_per_second / serial_verifies_per_second;

    println!("# fleet attestation under sustained load");
    println!("machines:              {machines} ({clients} clients each)");
    println!("boot:                  {boot_elapsed:.2}s");
    println!(
        "sustained load:        {established} sessions in {load_elapsed:.2}s ({sessions_per_second:.0}/s)"
    );
    println!(
        "latency:               p50 {:.0}us  p95 {:.0}us  p99 {:.0}us",
        p50.as_secs_f64() * 1e6,
        p95.as_secs_f64() * 1e6,
        p99.as_secs_f64() * 1e6
    );
    println!(
        "verifier counters:     {} verified, {} rejected, {} chain-cache hits, {} evicted",
        stats.verified_sessions, stats.rejected_evidence, stats.chain_cache_hits, stats.evicted_challenges
    );
    println!(
        "verifier scaling:      serial {serial_verifies_per_second:.0}/s vs {threads}-thread \
         {concurrent_verifies_per_second:.0}/s = {verifier_speedup:.2}x (host has {host_cpus} cpus)"
    );
    println!("calibration:           {calibration:.0} hashes/sec");

    if let Some(path) = &out {
        let json = render_json(&ReportInputs {
            machines,
            clients,
            rounds,
            threads,
            host_cpus,
            established,
            sessions_per_second,
            p50,
            p95,
            p99,
            serial_verifies_per_second,
            concurrent_verifies_per_second,
            verifier_speedup,
            calibration,
        });
        std::fs::write(path, json).expect("write result JSON");
        println!("\nwrote {path}");
    }

    if host_cpus >= SPEEDUP_GATE_CPUS && threads >= SPEEDUP_GATE_CPUS {
        if verifier_speedup < MIN_VERIFIER_SPEEDUP {
            eprintln!(
                "FAIL: concurrent verifier speedup {verifier_speedup:.2}x is below the \
                 {MIN_VERIFIER_SPEEDUP}x floor at {threads} threads"
            );
            std::process::exit(3);
        }
    } else {
        println!(
            "speedup gate skipped: needs {SPEEDUP_GATE_CPUS} cpus and {SPEEDUP_GATE_CPUS} \
             threads (host has {host_cpus}, run used {threads})"
        );
    }

    if let Some(path) = &baseline {
        let text = std::fs::read_to_string(path).expect("read baseline JSON");
        let reference = extract_number(&text, "sessions_per_second")
            .expect("baseline JSON has a sessions_per_second field");
        let reference_calibration =
            extract_number(&text, "calibration_hashes_per_second").unwrap_or(calibration);
        let normalized_current = sessions_per_second / calibration;
        let normalized_reference = reference / reference_calibration;
        println!(
            "baseline {path}: {reference:.0}/s at {reference_calibration:.0} hashes/sec \
             (normalized gate: {normalized_current:.2e} vs floor {:.2e})",
            normalized_reference / MAX_REGRESSION_FACTOR
        );
        if normalized_current * MAX_REGRESSION_FACTOR < normalized_reference {
            eprintln!(
                "FAIL: sustained attestation throughput regressed more than \
                 {MAX_REGRESSION_FACTOR}x (machine-normalized {normalized_current:.2e} vs \
                 baseline {normalized_reference:.2e})"
            );
            std::process::exit(2);
        }
    }
}

/// Pre-generates `rounds` passes of evidence from every machine in parallel
/// (each machine on its own thread — the fabric round trips are
/// per-machine), merged into one verify-ready batch.
fn collect_evidence_rounds(
    machines: &mut [FleetMachine],
    verifier: &RemoteVerifier,
    rounds: usize,
) -> Vec<(sanctorum_core::attestation::AttestationEvidence, [u8; 32])> {
    let merged = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for machine in machines.iter_mut() {
            let merged = &merged;
            scope.spawn(move || {
                let mut local = Vec::new();
                for _ in 0..rounds {
                    local.extend(machine.collect_evidence(verifier));
                }
                merged.lock().unwrap().extend(local);
            });
        }
    });
    merged.into_inner().unwrap()
}

/// Nearest-rank percentile over sorted latencies.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct ReportInputs {
    machines: usize,
    clients: usize,
    rounds: u64,
    threads: usize,
    host_cpus: usize,
    established: usize,
    sessions_per_second: f64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    serial_verifies_per_second: f64,
    concurrent_verifies_per_second: f64,
    verifier_speedup: f64,
    calibration: f64,
}

fn render_json(inputs: &ReportInputs) -> String {
    let ReportInputs {
        machines,
        clients,
        rounds,
        threads,
        host_cpus,
        established,
        sessions_per_second,
        p50,
        p95,
        p99,
        serial_verifies_per_second,
        concurrent_verifies_per_second,
        verifier_speedup,
        calibration,
    } = inputs;
    format!(
        r#"{{
  "bench": "fleet_attestation",
  "config": {{
    "machines": {machines},
    "clients_per_machine": {clients},
    "rounds": {rounds},
    "verifier_threads": {threads},
    "platform": "sanctum"
  }},
  "host_cpus": {host_cpus},
  "sessions_established": {established},
  "sessions_per_second": {sessions_per_second:.2},
  "latency_us": {{
    "p50": {:.1},
    "p95": {:.1},
    "p99": {:.1}
  }},
  "serial_verifies_per_second": {serial_verifies_per_second:.2},
  "concurrent_verifies_per_second": {concurrent_verifies_per_second:.2},
  "verifier_speedup": {verifier_speedup:.2},
  "calibration_hashes_per_second": {calibration:.1}
}}
"#,
        p50.as_secs_f64() * 1e6,
        p95.as_secs_f64() * 1e6,
        p99.as_secs_f64() * 1e6,
    )
}
