//! Machine-resource ownership tracking — the state machine of paper Fig. 2.
//!
//! Every isolable machine resource (a core or a DRAM region / PMP-backed
//! memory unit) is at all times in exactly one of three states:
//!
//! * **Owned** by a protection domain;
//! * **Blocked** — still assigned to its owner but flagged for release; the
//!   owner can no longer rely on it and the OS may reclaim it;
//! * **Available** — cleaned and ready to be granted to a new owner.
//!
//! The transitions (`block` by the owner or SM, `clean` by the OS, `grant` by
//! the OS) and who may perform them are enforced here; the monitor performs
//! the actual cleaning through the platform backend before completing the
//! `clean` transition.

use crate::error::{SmError, SmResult};
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_hal::isolation::RegionId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies one isolable machine resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceId {
    /// A processor core (time-multiplexed between domains).
    Core(CoreId),
    /// An isolable memory unit (a Sanctum DRAM region or Keystone PMP range).
    Region(RegionId),
}

/// The ownership state of one resource (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceState {
    /// Owned and usable by a protection domain.
    Owned(DomainKind),
    /// Flagged for release by its owner (or the SM); awaiting cleaning.
    Blocked(DomainKind),
    /// Cleaned and ready for re-allocation.
    Available,
}

impl ResourceState {
    /// Returns the owning domain, if the resource is owned or blocked.
    pub fn owner(&self) -> Option<DomainKind> {
        match self {
            ResourceState::Owned(d) | ResourceState::Blocked(d) => Some(*d),
            ResourceState::Available => None,
        }
    }
}

/// The resource-ownership map maintained by the SM.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResourceMap {
    states: BTreeMap<ResourceId, ResourceState>,
}

impl ResourceMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource with an initial owner (used at boot: all cores
    /// and regions start out owned by the untrusted OS, except the regions
    /// the SM reserves for itself).
    pub fn register(&mut self, id: ResourceId, initial: ResourceState) {
        self.states.insert(id, initial);
    }

    /// Returns the state of a resource.
    ///
    /// # Errors
    ///
    /// Returns [`SmError::UnknownResource`] if the resource was never
    /// registered.
    pub fn state(&self, id: ResourceId) -> SmResult<ResourceState> {
        self.states.get(&id).copied().ok_or(SmError::UnknownResource)
    }

    /// Returns every resource currently owned (or blocked) by `domain`.
    pub fn owned_by(&self, domain: DomainKind) -> Vec<ResourceId> {
        self.states
            .iter()
            .filter(|(_, s)| s.owner() == Some(domain))
            .map(|(id, _)| *id)
            .collect()
    }

    /// `block_resource`: flags an owned resource for release.
    ///
    /// Allowed for the owner itself or the SM (which blocks all of an
    /// enclave's resources when the OS deletes it).
    ///
    /// # Errors
    ///
    /// Fails if the caller is neither the owner nor the SM, or if the
    /// resource is not currently owned.
    pub fn block(&mut self, caller: DomainKind, id: ResourceId) -> SmResult<()> {
        let state = self.state(id)?;
        match state {
            ResourceState::Owned(owner) => {
                if caller != owner && caller != DomainKind::SecurityMonitor {
                    return Err(SmError::Unauthorized);
                }
                self.states.insert(id, ResourceState::Blocked(owner));
                Ok(())
            }
            ResourceState::Blocked(_) => Err(SmError::ResourceStateViolation {
                reason: "resource is already blocked",
            }),
            ResourceState::Available => Err(SmError::ResourceStateViolation {
                reason: "cannot block an available resource",
            }),
        }
    }

    /// `clean_resource`: completes the release of a blocked resource, making
    /// it available. Only the untrusted OS (which orchestrates machine
    /// resources) or the SM may trigger cleaning; the *actual* cleaning of
    /// hardware state is performed by the monitor before it calls this.
    ///
    /// # Errors
    ///
    /// Fails if the caller is not the OS or SM, or the resource is not
    /// blocked.
    pub fn clean(&mut self, caller: DomainKind, id: ResourceId) -> SmResult<DomainKind> {
        if caller != DomainKind::Untrusted && caller != DomainKind::SecurityMonitor {
            return Err(SmError::Unauthorized);
        }
        let state = self.state(id)?;
        match state {
            ResourceState::Blocked(previous_owner) => {
                self.states.insert(id, ResourceState::Available);
                Ok(previous_owner)
            }
            ResourceState::Owned(_) => Err(SmError::ResourceStateViolation {
                reason: "resource must be blocked before cleaning",
            }),
            ResourceState::Available => Err(SmError::ResourceStateViolation {
                reason: "resource is already available",
            }),
        }
    }

    /// `grant_resource`: assigns an available resource to a new owner. Only
    /// the OS (or the SM acting during enclave creation on the OS's behalf)
    /// makes allocation decisions.
    ///
    /// # Errors
    ///
    /// Fails if the caller is not the OS or SM, or the resource is not
    /// available.
    pub fn grant(
        &mut self,
        caller: DomainKind,
        id: ResourceId,
        new_owner: DomainKind,
    ) -> SmResult<()> {
        if caller != DomainKind::Untrusted && caller != DomainKind::SecurityMonitor {
            return Err(SmError::Unauthorized);
        }
        let state = self.state(id)?;
        match state {
            ResourceState::Available => {
                self.states.insert(id, ResourceState::Owned(new_owner));
                Ok(())
            }
            _ => Err(SmError::ResourceStateViolation {
                reason: "resource must be available to be granted",
            }),
        }
    }

    /// Verifies the global exclusivity invariant: every resource has exactly
    /// one state entry (structural) and owned resources have exactly one
    /// owner. Returns the number of resources checked.
    pub fn check_exclusivity(&self) -> usize {
        // The map structure itself guarantees one state per resource; this
        // method exists so integration tests and property tests can assert
        // the invariant explicitly after random operation sequences.
        self.states.len()
    }

    /// Iterates over all registered resources and their states.
    pub fn iter(&self) -> impl Iterator<Item = (&ResourceId, &ResourceState)> {
        self.states.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_hal::domain::EnclaveId;

    fn enclave(id: u64) -> DomainKind {
        DomainKind::Enclave(EnclaveId::new(id))
    }

    fn map_with_region() -> (ResourceMap, ResourceId) {
        let mut map = ResourceMap::new();
        let id = ResourceId::Region(RegionId::new(0));
        map.register(id, ResourceState::Owned(DomainKind::Untrusted));
        (map, id)
    }

    #[test]
    fn full_lifecycle_owned_blocked_available_owned() {
        let (mut map, id) = map_with_region();
        map.block(DomainKind::Untrusted, id).unwrap();
        assert_eq!(map.state(id).unwrap(), ResourceState::Blocked(DomainKind::Untrusted));
        let prev = map.clean(DomainKind::Untrusted, id).unwrap();
        assert_eq!(prev, DomainKind::Untrusted);
        assert_eq!(map.state(id).unwrap(), ResourceState::Available);
        map.grant(DomainKind::Untrusted, id, enclave(1)).unwrap();
        assert_eq!(map.state(id).unwrap(), ResourceState::Owned(enclave(1)));
    }

    #[test]
    fn only_owner_or_sm_may_block() {
        let (mut map, id) = map_with_region();
        // A different enclave cannot block the OS's resource.
        assert_eq!(map.block(enclave(1), id), Err(SmError::Unauthorized));
        // The SM can.
        map.block(DomainKind::SecurityMonitor, id).unwrap();
    }

    #[test]
    fn enclave_owner_can_block_its_own_resource() {
        let mut map = ResourceMap::new();
        let id = ResourceId::Region(RegionId::new(3));
        map.register(id, ResourceState::Owned(enclave(1)));
        map.block(enclave(1), id).unwrap();
        assert_eq!(map.state(id).unwrap(), ResourceState::Blocked(enclave(1)));
    }

    #[test]
    fn illegal_transitions_rejected() {
        let (mut map, id) = map_with_region();
        // Owned -> Available without blocking is illegal.
        assert!(matches!(
            map.clean(DomainKind::Untrusted, id),
            Err(SmError::ResourceStateViolation { .. })
        ));
        // Owned -> Owned (re-grant) is illegal.
        assert!(matches!(
            map.grant(DomainKind::Untrusted, id, enclave(1)),
            Err(SmError::ResourceStateViolation { .. })
        ));
        map.block(DomainKind::Untrusted, id).unwrap();
        // Double block is illegal.
        assert!(matches!(
            map.block(DomainKind::Untrusted, id),
            Err(SmError::ResourceStateViolation { .. })
        ));
        map.clean(DomainKind::Untrusted, id).unwrap();
        // Double clean is illegal.
        assert!(matches!(
            map.clean(DomainKind::Untrusted, id),
            Err(SmError::ResourceStateViolation { .. })
        ));
    }

    #[test]
    fn enclaves_cannot_grant_or_clean() {
        let (mut map, id) = map_with_region();
        map.block(DomainKind::Untrusted, id).unwrap();
        assert_eq!(map.clean(enclave(1), id), Err(SmError::Unauthorized));
        map.clean(DomainKind::Untrusted, id).unwrap();
        assert_eq!(map.grant(enclave(1), id, enclave(1)), Err(SmError::Unauthorized));
    }

    #[test]
    fn unknown_resource_reported() {
        let map = ResourceMap::new();
        assert_eq!(
            map.state(ResourceId::Core(CoreId::new(9))),
            Err(SmError::UnknownResource)
        );
    }

    #[test]
    fn owned_by_lists_resources() {
        let mut map = ResourceMap::new();
        map.register(
            ResourceId::Core(CoreId::new(0)),
            ResourceState::Owned(DomainKind::Untrusted),
        );
        map.register(
            ResourceId::Region(RegionId::new(1)),
            ResourceState::Owned(enclave(1)),
        );
        map.register(
            ResourceId::Region(RegionId::new(2)),
            ResourceState::Blocked(enclave(1)),
        );
        let owned = map.owned_by(enclave(1));
        assert_eq!(owned.len(), 2);
        assert_eq!(map.owned_by(DomainKind::Untrusted).len(), 1);
        assert_eq!(map.check_exclusivity(), 3);
    }
}
