//! Abstract guest programs.
//!
//! Real enclave and OS binaries are sequences of RISC-V instructions; what
//! matters to the security monitor is only the *architectural events* they
//! generate — memory accesses subject to translation and isolation checks,
//! environment calls into the SM, arithmetic that merely burns cycles, and
//! control flow. Guest programs here are small sequences of such events
//! ([`GuestOp`]), executed by [`crate::Machine::run_guest`] with full address
//! translation, isolation checking, cache modelling and cycle accounting.
//! This keeps the simulator faithful to everything the monitor can observe
//! while avoiding a full ISA interpreter.

use serde::{Deserialize, Serialize};

use crate::trap::TrapCause;
use sanctorum_hal::cycles::Cycles;

/// Register index inside the guest register file (x0–x31 analogue).
///
/// By convention (mirroring the RISC-V calling convention) registers 10–17
/// (`a0`–`a7`) carry SM-call arguments and return values.
pub type Reg = u8;

/// The `a0` register index (first argument / return value).
pub const REG_A0: Reg = 10;
/// The `a1` register index.
pub const REG_A1: Reg = 11;
/// The `a2` register index.
pub const REG_A2: Reg = 12;
/// The `a3` register index.
pub const REG_A3: Reg = 13;
/// The `a4` register index.
pub const REG_A4: Reg = 14;
/// The `a5` register index.
pub const REG_A5: Reg = 15;

/// One architectural event in a guest program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuestOp {
    /// Loads an immediate into a register.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: u64,
    },
    /// `dst = a + b` (wrapping).
    Add {
        /// Destination register.
        dst: Reg,
        /// First operand register.
        a: Reg,
        /// Second operand register.
        b: Reg,
    },
    /// Loads a 64-bit value from the virtual address held in `addr`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Register holding the virtual address.
        addr: Reg,
    },
    /// Stores the 64-bit value in `src` to the virtual address held in `addr`.
    Store {
        /// Source register.
        src: Reg,
        /// Register holding the virtual address.
        addr: Reg,
    },
    /// Pure computation consuming the given number of ALU cycles.
    Compute {
        /// Number of ALU-op cycles to charge.
        cycles: u64,
    },
    /// Environment call into the security monitor; arguments are taken from
    /// the `a*` registers by the event dispatcher.
    Ecall,
    /// Ends the program normally.
    Exit,
    /// Unconditional jump to the op at `target`.
    Jump {
        /// Target op index.
        target: u64,
    },
    /// Jumps to `target` if the register is non-zero.
    BranchNonZero {
        /// Register tested.
        reg: Reg,
        /// Target op index.
        target: u64,
    },
}

/// A guest program: a finite list of [`GuestOp`]s plus a human-readable name
/// used in traces and benches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuestProgram {
    name: String,
    ops: Vec<GuestOp>,
}

impl GuestProgram {
    /// Creates a program.
    pub fn new(name: impl Into<String>, ops: Vec<GuestOp>) -> Self {
        Self {
            name: name.into(),
            ops,
        }
    }

    /// Returns the program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the ops.
    pub fn ops(&self) -> &[GuestOp] {
        &self.ops
    }

    /// Returns the op at `pc`, if any.
    pub fn op_at(&self, pc: u64) -> Option<GuestOp> {
        self.ops.get(pc as usize).copied()
    }

    /// Number of ops in the program.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the program has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// A tiny program that stores `value` to `vaddr` and exits — handy in
    /// tests and examples.
    pub fn store_and_exit(vaddr: u64, value: u64) -> Self {
        Self::new(
            "store-and-exit",
            vec![
                GuestOp::MovImm { dst: 1, value: vaddr },
                GuestOp::MovImm { dst: 2, value },
                GuestOp::Store { src: 2, addr: 1 },
                GuestOp::Exit,
            ],
        )
    }

    /// A program that loads from `vaddr` into `a0` and exits.
    pub fn load_and_exit(vaddr: u64) -> Self {
        Self::new(
            "load-and-exit",
            vec![
                GuestOp::MovImm { dst: 1, value: vaddr },
                GuestOp::Load { dst: REG_A0, addr: 1 },
                GuestOp::Exit,
            ],
        )
    }

    /// A pure-compute program of the given length (used to model enclave
    /// workloads whose only interaction with the SM is entry and exit).
    pub fn compute(total_cycles: u64) -> Self {
        Self::new(
            "compute",
            vec![GuestOp::Compute { cycles: total_cycles }, GuestOp::Exit],
        )
    }
}

/// Why a call to [`crate::Machine::run_guest`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The program executed an [`GuestOp::Exit`].
    Completed,
    /// The program executed an [`GuestOp::Ecall`]; the hart's `a*` registers
    /// hold the SM-call arguments and the PC points past the ecall.
    Ecall,
    /// A trap was raised (page fault, isolation fault, illegal op, or an
    /// interrupt injected by the harness).
    Trap(TrapCause),
    /// The step budget ran out before the program finished.
    OutOfSteps,
}

/// The result of running a guest program slice on a hart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Why execution stopped.
    pub exit: ExitReason,
    /// Cycles consumed by this run.
    pub cycles: Cycles,
    /// Number of ops executed.
    pub steps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_accessors() {
        let p = GuestProgram::store_and_exit(0x1000, 7);
        assert_eq!(p.name(), "store-and-exit");
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.op_at(3), Some(GuestOp::Exit));
        assert_eq!(p.op_at(4), None);
    }

    #[test]
    fn helper_programs_have_expected_shape() {
        assert!(matches!(
            GuestProgram::load_and_exit(0x2000).op_at(1),
            Some(GuestOp::Load { dst: REG_A0, .. })
        ));
        assert!(matches!(
            GuestProgram::compute(500).op_at(0),
            Some(GuestOp::Compute { cycles: 500 })
        ));
    }

    #[test]
    fn clone_preserves_program() {
        let p = GuestProgram::compute(10);
        let clone = p.clone();
        assert_eq!(p, clone);
        assert_eq!(clone.ops(), p.ops());
    }
}
