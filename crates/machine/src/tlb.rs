//! A per-hart translation lookaside buffer model.
//!
//! The paper requires TLB entries to conform to the DRAM-region allocation,
//! and a TLB shootdown whenever regions are re-assigned to a different
//! protection domain (Section VII-A). The model tracks which protection
//! domain inserted each entry and which physical page it maps so shootdowns
//! can invalidate precisely, and exposes counters the benchmarks report.

use sanctorum_hal::addr::{PhysPageNum, VirtPageNum};
use sanctorum_hal::domain::DomainKind;
use sanctorum_hal::perm::MemPerms;

/// A single TLB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page mapped.
    pub vpn: VirtPageNum,
    /// Physical page it maps to.
    pub ppn: PhysPageNum,
    /// Leaf permissions.
    pub perms: MemPerms,
    /// Protection domain that installed the translation.
    pub domain: DomainKind,
}

/// Hit/miss statistics for one TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of entries invalidated by flushes and shootdowns.
    pub invalidations: u64,
}

/// A small fully-associative TLB with FIFO replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    capacity: usize,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            stats: TlbStats::default(),
        }
    }

    /// Looks up a translation for `vpn` on behalf of `domain`.
    ///
    /// Entries installed by a different protection domain never hit — the
    /// hardware tags entries with the domain, which is how Sanctum prevents
    /// cross-domain TLB-based leakage without a full flush on every switch.
    pub fn lookup(&mut self, domain: DomainKind, vpn: VirtPageNum) -> Option<TlbEntry> {
        let found = self
            .entries
            .iter()
            .find(|e| e.vpn == vpn && e.domain == domain)
            .copied();
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Installs a translation, evicting the oldest entry when full.
    pub fn insert(&mut self, entry: TlbEntry) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(entry);
    }

    /// Invalidates every entry (a full flush on context switch).
    pub fn flush_all(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
    }

    /// Invalidates all entries whose physical page lies in
    /// `[base_ppn, base_ppn + page_count)` — the per-region shootdown.
    pub fn flush_phys_range(&mut self, base_ppn: PhysPageNum, page_count: u64) {
        let before = self.entries.len();
        self.entries.retain(|e| {
            !(e.ppn.index() >= base_ppn.index() && e.ppn.index() < base_ppn.index() + page_count)
        });
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }

    /// Invalidates all entries belonging to `domain`.
    pub fn flush_domain(&mut self, domain: DomainKind) {
        let before = self.entries.len();
        self.entries.retain(|e| e.domain != domain);
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }

    /// Returns the number of currently valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Returns `true` if any resident entry was installed by `domain` —
    /// used by tests asserting that no stale enclave translations survive an
    /// asynchronous enclave exit.
    pub fn has_entries_for(&self, domain: DomainKind) -> bool {
        self.entries.iter().any(|e| e.domain == domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_hal::domain::EnclaveId;

    fn entry(vpn: u64, ppn: u64, domain: DomainKind) -> TlbEntry {
        TlbEntry {
            vpn: VirtPageNum::new(vpn),
            ppn: PhysPageNum::new(ppn),
            perms: MemPerms::RW,
            domain,
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(1, 100, DomainKind::Untrusted));
        assert!(tlb.lookup(DomainKind::Untrusted, VirtPageNum::new(1)).is_some());
        assert!(tlb.lookup(DomainKind::Untrusted, VirtPageNum::new(2)).is_none());
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn cross_domain_entries_do_not_hit() {
        let mut tlb = Tlb::new(4);
        let e1 = DomainKind::Enclave(EnclaveId::new(1));
        tlb.insert(entry(1, 100, e1));
        assert!(tlb.lookup(DomainKind::Untrusted, VirtPageNum::new(1)).is_none());
        assert!(tlb.lookup(e1, VirtPageNum::new(1)).is_some());
    }

    #[test]
    fn fifo_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.insert(entry(1, 100, DomainKind::Untrusted));
        tlb.insert(entry(2, 101, DomainKind::Untrusted));
        tlb.insert(entry(3, 102, DomainKind::Untrusted));
        assert_eq!(tlb.len(), 2);
        assert!(tlb.lookup(DomainKind::Untrusted, VirtPageNum::new(1)).is_none());
        assert!(tlb.lookup(DomainKind::Untrusted, VirtPageNum::new(3)).is_some());
    }

    #[test]
    fn phys_range_shootdown() {
        let mut tlb = Tlb::new(8);
        tlb.insert(entry(1, 100, DomainKind::Untrusted));
        tlb.insert(entry(2, 200, DomainKind::Untrusted));
        tlb.insert(entry(3, 205, DomainKind::Untrusted));
        tlb.flush_phys_range(PhysPageNum::new(200), 8);
        assert_eq!(tlb.len(), 1);
        assert!(tlb.lookup(DomainKind::Untrusted, VirtPageNum::new(1)).is_some());
        assert_eq!(tlb.stats().invalidations, 2);
    }

    #[test]
    fn domain_flush() {
        let mut tlb = Tlb::new(8);
        let e1 = DomainKind::Enclave(EnclaveId::new(1));
        tlb.insert(entry(1, 100, e1));
        tlb.insert(entry(2, 101, DomainKind::Untrusted));
        assert!(tlb.has_entries_for(e1));
        tlb.flush_domain(e1);
        assert!(!tlb.has_entries_for(e1));
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn flush_all_empties() {
        let mut tlb = Tlb::new(8);
        tlb.insert(entry(1, 100, DomainKind::Untrusted));
        tlb.insert(entry(2, 101, DomainKind::Untrusted));
        tlb.flush_all();
        assert!(tlb.is_empty());
        assert_eq!(tlb.stats().invalidations, 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }
}
