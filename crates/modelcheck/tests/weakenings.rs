//! The checker's self-check: every deliberate monitor weakening must be
//! *found* by the bounded search, within a CI-affordable depth budget, as
//! a minimal counterexample that replays both through the checker's own
//! `reproduce` and through the explorer's text trace machinery.
//!
//! This is what makes "the depth-6 sweep found nothing" evidence rather
//! than absence of evidence: the same search, pointed at a monitor with a
//! known hole, demonstrably walks into it. Iterating
//! [`TestWeakening::ALL`] means a future weakening cannot be added without
//! this harness learning to catch it — the `match` below stops compiling.

use sanctorum_core::monitor::TestWeakening;
use sanctorum_explorer::trace::parse_trace;
use sanctorum_modelcheck::search::reproduce;
use sanctorum_modelcheck::{search, ModelConfig};
use sanctorum_os::ops::ImageKind;

/// The search configuration that must expose `weaken`, the violation kinds
/// that count as catching it, and the known minimal witness length. The
/// alphabets are deliberately small — each weakening has a two- or
/// three-op witness, and the self-check should prove the checker finds it
/// *fast*, not re-run the full sweep per weakening.
fn detector(weaken: TestWeakening) -> (ModelConfig, &'static [&'static str], usize) {
    let base = ModelConfig {
        weaken: Some(weaken),
        max_depth: 4,
        build_kinds: &[ImageKind::Hello],
        ..ModelConfig::default()
    };
    match weaken {
        // An unscrubbed teardown leaves secrets in a region the OS gets
        // back: caught as dirty reuse (or by the dirtied-page secret scan,
        // whichever invariant fires first on the shortest path). Three ops
        // minimum — the residue is only recognizable as a secret while an
        // enclave carrying it is live, so a second build must precede the
        // unscrubbed teardown.
        TestWeakening::SkipRegionScrub => (
            ModelConfig { labels: Some(&["build", "teardown"]), ..base },
            &["dirty-reuse", "secret-in-memory"][..],
            3,
        ),
        // Skipping the core clean on enclave exit leaks the enclave's
        // architected state to the next domain on that hart: build + one
        // run to completion.
        TestWeakening::SkipCoreClean => (
            ModelConfig { labels: Some(&["build", "run"]), ..base },
            &["secret-leak", "secret-in-memory"][..],
            2,
        ),
        // A recovery that skips journal replay leaves a crashed call's
        // intent entries pending forever: build, then a delete-enclave
        // crashed past its journal.record crossing — the crash-residue
        // check fires on the very step that recovers.
        TestWeakening::SkipJournalReplay => (
            ModelConfig {
                labels: Some(&["build", "delete-enclave"]),
                crash_points: 3,
                max_live: 1,
                ..base
            },
            &["crash-residue", "exclusivity"][..],
            2,
        ),
        // Swallowing a failed scrub hands dirty memory to the next owner.
        // The FaultStorm attack self-injects the persistent backend fault
        // and checks the degrade path end to end, so a two-op build+attack
        // witness suffices — caught as a successful attack (or as dirty
        // reuse, whichever invariant fires first).
        TestWeakening::SkipQuarantine => (
            ModelConfig {
                labels: Some(&["build", "attack"]),
                max_live: 1,
                ..base
            },
            &["attack", "dirty-reuse", "secret-in-memory"][..],
            2,
        ),
    }
}

#[test]
fn every_weakening_is_caught_with_a_minimal_replayable_counterexample() {
    for weaken in TestWeakening::ALL {
        let (config, expected_kinds, witness_len) = detector(weaken);
        let outcome = search(&config);
        let counterexample = outcome.violation.unwrap_or_else(|| {
            panic!(
                "{}: search found nothing in {} states to depth {}",
                weaken.name(),
                outcome.states,
                config.max_depth
            )
        });
        assert!(
            expected_kinds.contains(&counterexample.kind),
            "{}: caught as {:?}, expected one of {:?}: {}",
            weaken.name(),
            counterexample.kind,
            expected_kinds,
            counterexample.violation
        );

        // Minimality: BFS plus the deletion shrink must not report
        // anything longer than the known minimal witness.
        assert!(
            counterexample.trace.len() <= witness_len,
            "{}: counterexample not minimal ({} ops): {}",
            weaken.name(),
            counterexample.trace.len(),
            counterexample.to_text()
        );

        // Replayable through the checker: the same config reproduces the
        // same violation kind at the trace's last step.
        let (step, violation) = reproduce(&config, &counterexample.trace)
            .unwrap_or_else(|| {
                panic!("{}: counterexample does not reproduce", weaken.name())
            });
        assert_eq!(step, counterexample.trace.len() - 1);
        assert_eq!(violation.kind(), counterexample.kind);

        // Replayable through the trace machinery: the text form is the
        // corpus format and round-trips to the same ops.
        let reparsed = parse_trace(&counterexample.to_text())
            .unwrap_or_else(|err| panic!("{}: {err}", weaken.name()));
        assert_eq!(reparsed, counterexample.trace);

        eprintln!(
            "{}: caught as {} in {} states ({} ops): {}",
            weaken.name(),
            counterexample.kind,
            outcome.states,
            counterexample.trace.len(),
            counterexample.to_text().replace('\n', " / ")
        );
    }
}

#[test]
fn unweakened_counterpart_searches_stay_clean() {
    // The detectors must owe their findings to the weakening, not to the
    // restricted alphabet: the same configurations with the weakening
    // removed explore clean.
    for weaken in TestWeakening::ALL {
        let (config, _, _) = detector(weaken);
        let outcome = search(&ModelConfig { weaken: None, ..config });
        assert!(
            outcome.violation.is_none(),
            "{}: unweakened control found {:?}",
            weaken.name(),
            outcome.violation
        );
        assert!(outcome.complete, "{}: control search hit the cap", weaken.name());
    }
}
