//! Seeded trace generation: per-hart op streams interleaved by a PRNG
//! scheduler.
//!
//! Each simulated hart owns an independent SplitMix64 stream derived from the
//! run seed, and a separate scheduler stream picks which hart issues the next
//! op. The whole interleaving is therefore a pure function of `(seed, harts,
//! len)`: regenerating a prefix is all it takes to replay a failure, and a
//! trace remains executable after ops are deleted (selectors are abstract —
//! see `sanctorum_os::ops`), which is what makes shrinking sound.

use proptest::TestRng;
use sanctorum_os::ops::{ImageKind, Op};

/// One scheduled step: the hart that issues the op, and the op itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedOp {
    /// Index of the issuing hart.
    pub hart: u32,
    /// The operation.
    pub op: Op,
}

/// Derives the op-stream seed for one hart from the run seed.
fn hart_stream_seed(seed: u64, hart: u32) -> u64 {
    seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(hart as u64 + 1)
}

/// Generates the interleaved trace for a run: `len` ops drawn from `harts`
/// per-hart streams, scheduled by a PRNG choice per step.
pub fn generate(seed: u64, harts: u32, len: usize) -> Vec<TracedOp> {
    assert!(harts > 0, "at least one hart stream is required");
    let mut scheduler = TestRng::with_seed(seed);
    let mut streams: Vec<TestRng> = (0..harts)
        .map(|hart| TestRng::with_seed(hart_stream_seed(seed, hart)))
        .collect();
    (0..len)
        .map(|_| {
            let hart = (scheduler.next_u64() % harts as u64) as u32;
            let stream = &mut streams[hart as usize];
            let op = Op::sample(&mut || stream.next_u64());
            TracedOp { hart, op }
        })
        .collect()
}

/// Renders a trace in the line-based text format: one `hart op args…` line
/// per step, `#` comments allowed. The format is the regression corpus's
/// storage form (`tests/regressions/*.trace`) and the model checker's
/// counterexample form — [`parse_trace`] round-trips it exactly.
pub fn format_trace(trace: &[TracedOp]) -> String {
    let mut out = String::new();
    for step in trace {
        out.push_str(&format!("{} {}\n", step.hart, format_op(&step.op)));
    }
    out
}

/// Renders one op in the text format (without the hart prefix). Recursive,
/// because [`Op::Crashed`] wraps an inner op: `crashed <point> <inner…>`.
fn format_op(op: &Op) -> String {
    fn kind_name(kind: ImageKind) -> &'static str {
        match kind {
            ImageKind::Hello => "hello",
            ImageKind::Compute => "compute",
            ImageKind::Faulting => "faulting",
            ImageKind::FaultHandling => "fault-handling",
        }
    }
    match op {
        Op::Build { kind, param } => format!("build {} {param}", kind_name(*kind)),
        Op::Teardown { slot } => format!("teardown {slot}"),
        Op::Run { slot, budget } => format!("run {slot} {budget}"),
        Op::Tick => "tick".to_string(),
        Op::BlockRegion { region } => format!("block-region {region}"),
        Op::CleanRegion { region } => format!("clean-region {region}"),
        Op::GrantRegion { region, owner } => format!("grant-region {region} {owner}"),
        Op::DeleteEnclave { slot } => format!("delete-enclave {slot}"),
        Op::LoadAfterInit { slot } => format!("load-after-init {slot}"),
        Op::MailRoundTrip { slot, payload } => format!("mail-roundtrip {slot} {payload}"),
        Op::EnclaveMail { from, to, payload } => {
            format!("enclave-mail {from} {to} {payload}")
        }
        Op::MailQueue { slot, burst, payload } => {
            format!("mail-queue {slot} {burst} {payload}")
        }
        Op::AttestService { clients } => format!("attest-service {clients}"),
        Op::GetField { field } => format!("get-field {field}"),
        Op::Batch { region } => format!("batch {region}"),
        Op::Attack { kind, slot } => format!("attack {kind} {slot}"),
        Op::Crashed { point, op } => format!("crashed {point} {}", format_op(op)),
    }
}

/// Parses the text form produced by [`format_trace`]. Blank lines and lines
/// starting with `#` are ignored, so committed corpus files can carry
/// provenance comments.
///
/// # Errors
///
/// Returns a message naming the offending line on unknown op names, wrong
/// arity or non-numeric arguments.
pub fn parse_trace(text: &str) -> Result<Vec<TracedOp>, String> {
    let mut trace = Vec::new();
    for (number, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let context = |what: &str| format!("line {}: {what}: {raw:?}", number + 1);
        let hart: u32 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| context("expected a hart index"))?;
        let name = fields.next().ok_or_else(|| context("expected an op name"))?;
        let rest: Vec<&str> = fields.collect();
        let op = parse_op(name, &rest, &context)?;
        trace.push(TracedOp { hart, op });
    }
    Ok(trace)
}

/// Parses one op name plus its argument fields. Recursive, because
/// `crashed <point> <inner…>` wraps a complete inner op in its tail.
fn parse_op(
    name: &str,
    rest: &[&str],
    context: &dyn Fn(&str) -> String,
) -> Result<Op, String> {
    let arg = |index: usize| -> Result<u64, String> {
        rest.get(index)
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| context("expected a numeric argument"))
    };
    let arity = |expected: usize| -> Result<(), String> {
        if rest.len() == expected {
            Ok(())
        } else {
            Err(context("wrong argument count"))
        }
    };
    let op = match name {
        "build" => {
            arity(2)?;
            let kind = match rest[0] {
                "hello" => ImageKind::Hello,
                "compute" => ImageKind::Compute,
                "faulting" => ImageKind::Faulting,
                "fault-handling" => ImageKind::FaultHandling,
                _ => return Err(context("unknown image kind")),
            };
            Op::Build { kind, param: arg(1)? }
        }
        "teardown" => {
            arity(1)?;
            Op::Teardown { slot: arg(0)? }
        }
        "run" => {
            arity(2)?;
            Op::Run { slot: arg(0)?, budget: arg(1)? }
        }
        "tick" => {
            arity(0)?;
            Op::Tick
        }
        "block-region" => {
            arity(1)?;
            Op::BlockRegion { region: arg(0)? }
        }
        "clean-region" => {
            arity(1)?;
            Op::CleanRegion { region: arg(0)? }
        }
        "grant-region" => {
            arity(2)?;
            Op::GrantRegion { region: arg(0)?, owner: arg(1)? }
        }
        "delete-enclave" => {
            arity(1)?;
            Op::DeleteEnclave { slot: arg(0)? }
        }
        "load-after-init" => {
            arity(1)?;
            Op::LoadAfterInit { slot: arg(0)? }
        }
        "mail-roundtrip" => {
            arity(2)?;
            Op::MailRoundTrip { slot: arg(0)?, payload: arg(1)? }
        }
        "enclave-mail" => {
            arity(3)?;
            Op::EnclaveMail { from: arg(0)?, to: arg(1)?, payload: arg(2)? }
        }
        "mail-queue" => {
            arity(3)?;
            Op::MailQueue { slot: arg(0)?, burst: arg(1)?, payload: arg(2)? }
        }
        "attest-service" => {
            arity(1)?;
            Op::AttestService { clients: arg(0)? }
        }
        "get-field" => {
            arity(1)?;
            Op::GetField { field: arg(0)? }
        }
        "batch" => {
            arity(1)?;
            Op::Batch { region: arg(0)? }
        }
        "attack" => {
            arity(2)?;
            Op::Attack { kind: arg(0)?, slot: arg(1)? }
        }
        "crashed" => {
            let point = arg(0)?;
            let inner_name = rest
                .get(1)
                .ok_or_else(|| context("expected a crashed inner op"))?;
            let inner = parse_op(inner_name, &rest[2..], context)?;
            Op::Crashed { point, op: Box::new(inner) }
        }
        _ => return Err(context("unknown op name")),
    };
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_round_trips_every_variant() {
        // A generated trace covers the whole variant space with high
        // probability; pin a few hand-written exotics on top.
        let mut trace = generate(0xf0f0, 2, 400);
        trace.push(TracedOp { hart: 1, op: Op::Tick });
        trace.push(TracedOp {
            hart: 0,
            op: Op::Build { kind: ImageKind::FaultHandling, param: u64::MAX },
        });
        // The sampler never draws crash ops (the sweep places them
        // exhaustively instead), so pin the wrapped form by hand.
        trace.push(TracedOp {
            hart: 0,
            op: Op::Crashed { point: 3, op: Box::new(Op::DeleteEnclave { slot: 0 }) },
        });
        trace.push(TracedOp {
            hart: 1,
            op: Op::Crashed { point: 17, op: Box::new(Op::Tick) },
        });
        let text = format_trace(&trace);
        let parsed = parse_trace(&text).expect("formatted traces parse");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn crashed_lines_round_trip_and_reject_bad_tails() {
        let parsed = parse_trace("0 crashed 2 clean-region 5\n").expect("valid");
        assert_eq!(
            parsed,
            vec![TracedOp {
                hart: 0,
                op: Op::Crashed { point: 2, op: Box::new(Op::CleanRegion { region: 5 }) },
            }]
        );
        for bad in ["0 crashed", "0 crashed 2", "0 crashed 2 warp 1", "0 crashed 2 run 1"] {
            let err = parse_trace(bad).unwrap_err();
            assert!(err.contains("line 1"), "{err}");
        }
    }

    #[test]
    fn parser_ignores_comments_and_reports_bad_lines() {
        let parsed = parse_trace("# header\n\n 0 tick \n1 run 0 24\n").expect("valid");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1], TracedOp { hart: 1, op: Op::Run { slot: 0, budget: 24 } });
        for bad in ["0 warp 1", "x tick", "0 run 1", "0 build mystery 0"] {
            let err = parse_trace(bad).unwrap_err();
            assert!(err.contains("line 1"), "{err}");
        }
    }

    #[test]
    fn traces_are_deterministic_in_the_seed() {
        let a = generate(99, 2, 300);
        let b = generate(99, 2, 300);
        assert_eq!(a, b);
        let c = generate(100, 2, 300);
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn prefix_regeneration_matches() {
        // Replaying from (seed, step) regenerates exactly the original
        // prefix — the property the failure reports rely on.
        let full = generate(7, 2, 250);
        let prefix = generate(7, 2, 120);
        assert_eq!(&full[..120], &prefix[..]);
    }

    #[test]
    fn both_harts_are_scheduled() {
        let trace = generate(3, 2, 200);
        assert!(trace.iter().any(|t| t.hart == 0));
        assert!(trace.iter().any(|t| t.hart == 1));
    }
}
