//! The SM call surface: typed trait, call registry, and register-level ABI.
//!
//! This module is the single place the SM API is *declared*. Three layers
//! share one source of truth:
//!
//! 1. **[`SmApi`]** — the typed call surface. Every method takes a
//!    [`CallerSession`] (an authenticated caller capability, see
//!    [`crate::session`]) instead of a raw `DomainKind`. The monitor
//!    implements it; the OS model, enclaves, benches and tests call it. A
//!    future alternative monitor backend implements the same trait and slots
//!    into every harness unchanged.
//! 2. **The call registry** — the [`sm_call_registry!`] invocation below
//!    declares every register-ABI call exactly once: its call number, its
//!    typed arguments (with their register encoding via [`RegScalar`]), a
//!    context-switch flag, and the handler mapping it onto [`SmApi`]. The
//!    enum [`SmCall`], `encode`/`decode`, per-call metadata and the event
//!    dispatcher's perform table are all derived from that one declaration —
//!    adding a call is a one-entry change.
//! 3. **The register ABI** — callers place a call number in `a0` and
//!    arguments in `a1`–`a5`, execute an environment call, and receive a
//!    status code in `a0` plus an optional value in `a1` (paper Section V-A).
//!    Status codes map 1:1 onto [`crate::error::SmError`] variants via
//!    [`status_of`] / [`SmError::from_status`] — the mapping is a bijection,
//!    asserted by a unit test.
//!
//! Batched calls: [`SmCall::Batch`] names a table of packed calls in
//! untrusted memory and executes them in a single trap, writing per-call
//! statuses back into the table (see [`crate::dispatch`] for the wire
//! layout). This amortizes the trap + authenticate + dispatch overhead for
//! call-dense workloads such as enclave loading.

use crate::error::{SmError, SmResult};
use crate::mailbox::SenderIdentity;
use crate::measurement::Measurement;
use crate::monitor::{EnclaveEntry, PublicField, SecurityMonitor};
use crate::resource::ResourceId;
use crate::session::CallerSession;
use crate::thread::ThreadId;
use sanctorum_hal::addr::{PhysAddr, VirtAddr};
use sanctorum_hal::cycles::Cycles;
use sanctorum_hal::domain::{DomainKind, EnclaveId};
use sanctorum_hal::isolation::{IsolationError, RegionId};
use sanctorum_hal::perm::MemPerms;
use sanctorum_trust::{ReadAccess, SpanPolicy, Tainted, WriteAccess};
use serde::{Deserialize, Serialize};

pub use sanctorum_trust::RegScalar;

// ---------------------------------------------------------------------------
// the typed call surface
// ---------------------------------------------------------------------------

/// The security monitor's complete call surface, as seen by every caller.
///
/// Each method corresponds to one SM API call of the paper (Sections V–VI).
/// The [`CallerSession`] argument carries the authenticated caller identity;
/// authorization decisions happen behind it, inside the implementation. The
/// trait is object-safe so harnesses can compare monitor backends through
/// `&dyn SmApi`.
pub trait SmApi {
    /// `create_enclave`: the OS dedicates *available* memory regions to a new
    /// enclave with virtual range `[evrange_base, +evrange_len)`.
    ///
    /// # Errors
    ///
    /// Fails if the session is not the OS, the arguments are malformed, any
    /// region is not available, or the enclave limit is reached.
    fn create_enclave(
        &self,
        session: CallerSession,
        evrange_base: VirtAddr,
        evrange_len: u64,
        regions: &[RegionId],
    ) -> SmResult<EnclaveId>;

    /// `allocate_page_table`: reserves and zeroes the enclave's page-table
    /// pages and records the allocation in the measurement.
    ///
    /// # Errors
    ///
    /// Fails unless the session is the OS and the enclave is still loading.
    fn allocate_page_table(&self, session: CallerSession, eid: EnclaveId) -> SmResult<PhysAddr>;

    /// `load_page`: copies one page of initial content into the enclave,
    /// mapping it with `perms` and extending the measurement.
    ///
    /// # Errors
    ///
    /// Fails on bad alignment, addresses outside `evrange`, aliased virtual
    /// pages, exhausted enclave memory, an unreadable source page, or a
    /// missing page-table allocation.
    fn load_page(
        &self,
        session: CallerSession,
        eid: EnclaveId,
        vaddr: VirtAddr,
        src: Tainted<PhysAddr>,
        perms: MemPerms,
    ) -> SmResult<PhysAddr>;

    /// `load_thread`: creates an enclave thread during loading; the thread is
    /// implicitly accepted.
    ///
    /// # Errors
    ///
    /// Fails unless the session is the OS and the enclave is loading.
    fn load_thread(
        &self,
        session: CallerSession,
        eid: EnclaveId,
        entry_pc: u64,
        fault_handler_pc: Option<u64>,
    ) -> SmResult<ThreadId>;

    /// `init_enclave`: seals the enclave and finalizes its measurement.
    ///
    /// # Errors
    ///
    /// Fails unless the session is the OS and the enclave is loading with at
    /// least one thread and its page tables allocated.
    fn init_enclave(&self, session: CallerSession, eid: EnclaveId) -> SmResult<Measurement>;

    /// `delete_enclave`: destroys an enclave whose threads are all stopped,
    /// blocking every resource it owned.
    ///
    /// # Errors
    ///
    /// Fails unless the session is the OS and no enclave thread is running.
    fn delete_enclave(&self, session: CallerSession, eid: EnclaveId) -> SmResult<()>;

    /// `enter_enclave`: schedules enclave thread `tid` onto the session's
    /// core (the core the caller was authenticated on — scheduling is always
    /// a property of the calling hart, exactly as in the register ABI).
    ///
    /// # Errors
    ///
    /// Fails unless the session is the OS, the enclave is initialized, the
    /// thread belongs to it, and the core is free.
    fn enter_enclave(
        &self,
        session: CallerSession,
        eid: EnclaveId,
        tid: ThreadId,
    ) -> SmResult<EnclaveEntry>;

    /// `exit_enclave`: voluntary exit by the enclave running on the
    /// session's core.
    ///
    /// # Errors
    ///
    /// Fails unless the session is the enclave actually running on its core.
    fn exit_enclave(&self, session: CallerSession) -> SmResult<Cycles>;

    /// `create_thread`: the OS creates an unassigned thread metadata slot.
    ///
    /// # Errors
    ///
    /// Fails if the session is not the OS or the thread limit is reached.
    fn create_thread(&self, session: CallerSession, entry_pc: u64) -> SmResult<ThreadId>;

    /// `delete_thread`: removes an available thread's metadata.
    ///
    /// # Errors
    ///
    /// Fails if the thread is assigned or running.
    fn delete_thread(&self, session: CallerSession, tid: ThreadId) -> SmResult<()>;

    /// `assign_thread`: binds an available thread to an enclave.
    ///
    /// # Errors
    ///
    /// Propagates thread state-machine errors.
    fn assign_thread(
        &self,
        session: CallerSession,
        eid: EnclaveId,
        tid: ThreadId,
    ) -> SmResult<()>;

    /// `accept_thread`: the enclave accepts a thread assigned to it.
    ///
    /// # Errors
    ///
    /// Propagates thread state-machine errors.
    fn accept_thread(&self, session: CallerSession, tid: ThreadId) -> SmResult<()>;

    /// `release_thread`: the enclave gives a thread back to the OS pool.
    ///
    /// # Errors
    ///
    /// Propagates thread state-machine errors.
    fn release_thread(&self, session: CallerSession, tid: ThreadId) -> SmResult<()>;

    /// `block_resource`: flags a resource for release (owner or SM).
    ///
    /// # Errors
    ///
    /// Propagates resource state-machine and authorization errors.
    fn block_resource(&self, session: CallerSession, id: ResourceId) -> SmResult<()>;

    /// `clean_resource`: scrubs a blocked resource and marks it available.
    ///
    /// # Errors
    ///
    /// Fails unless the session is the OS (or SM) and the resource is
    /// blocked.
    fn clean_resource(&self, session: CallerSession, id: ResourceId) -> SmResult<Cycles>;

    /// `grant_resource`: gives an available resource to a new owner.
    ///
    /// # Errors
    ///
    /// Fails unless the transition is legal for this session.
    fn grant_resource(
        &self,
        session: CallerSession,
        id: ResourceId,
        new_owner: DomainKind,
    ) -> SmResult<()>;

    /// `accept_mail`: arms one of the calling enclave's mailboxes to accept
    /// messages from `sender_id` (an enclave id value, 0 for the OS, or
    /// [`crate::mailbox::ANY_SENDER`] for wildcard service mode).
    ///
    /// # Errors
    ///
    /// Fails for non-enclave sessions or unknown mailboxes.
    fn accept_mail(
        &self,
        session: CallerSession,
        mailbox: usize,
        sender_id: u64,
    ) -> SmResult<()>;

    /// `send_mail`: sends `message` to `recipient`, tagged with the sender's
    /// SM-recorded identity.
    ///
    /// # Errors
    ///
    /// Fails if no recipient mailbox accepts this sender or the message is
    /// oversized.
    fn send_mail(
        &self,
        session: CallerSession,
        recipient: EnclaveId,
        message: Tainted<&[u8]>,
    ) -> SmResult<()>;

    /// `get_mail`: fetches the oldest message queued in `mailbox` together
    /// with the SM-recorded sender identity, refunding the sender's quota.
    ///
    /// # Errors
    ///
    /// Fails for non-enclave sessions, unknown mailboxes, or empty mailboxes.
    fn get_mail(
        &self,
        session: CallerSession,
        mailbox: usize,
    ) -> SmResult<(Vec<u8>, SenderIdentity)>;

    /// `get_mail` with an atomic length bound: fetches the oldest queued
    /// message only if it fits in `max_len` bytes; a too-large message is
    /// left queued and the call fails. The check and the consumption happen
    /// under one lock, so no concurrent consumer can swap the queue head in
    /// between — the register-ABI `GetMail` is built on this.
    ///
    /// # Errors
    ///
    /// As [`SmApi::get_mail`], plus [`SmError::InvalidArgument`] when the
    /// waiting message exceeds `max_len` (message not consumed).
    fn get_mail_bounded(
        &self,
        session: CallerSession,
        mailbox: usize,
        max_len: usize,
    ) -> SmResult<(Vec<u8>, SenderIdentity)>;

    /// `peek_mail`: non-destructive probe of the oldest message queued in
    /// `mailbox`, returning its length and raw sender id. Callers use this
    /// to size a receive buffer *before* consuming the message.
    ///
    /// # Errors
    ///
    /// Fails for non-enclave sessions, unknown mailboxes, or empty mailboxes.
    fn peek_mail(&self, session: CallerSession, mailbox: usize) -> SmResult<(usize, u64)>;

    /// `get_attestation_key`: releases the attestation signing seed to the
    /// trusted signing enclave (measurement-gated).
    ///
    /// # Errors
    ///
    /// Fails for any session other than an initialized enclave whose
    /// measurement equals the configured signing-enclave measurement.
    fn get_attestation_key(&self, session: CallerSession) -> SmResult<[u8; 32]>;

    /// `get_field`: returns public identity material. Available to every
    /// session.
    fn get_field(&self, session: CallerSession, field: PublicField) -> Vec<u8>;

    /// Executes `calls` back-to-back under one session, returning a per-call
    /// `(status, value)` outcome. Semantics match issuing the calls serially,
    /// with one exception: a context-switching call (or a nested batch) is
    /// refused with [`status::INVALID_ARGUMENT`] and aborts the batch at that
    /// entry — the monitor never switches contexts from inside a batch.
    ///
    /// # Errors
    ///
    /// Fails only on malformed batch shape (empty or oversized); individual
    /// call failures are reported per entry, not as an error.
    fn batch(&self, session: CallerSession, calls: &[SmCall]) -> SmResult<Vec<CallOutcome>>;
}

/// Per-entry outcome of a batched call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallOutcome {
    /// Status code (see [`status`]).
    pub status: u64,
    /// Call-specific return value (0 on failure).
    pub value: u64,
}

impl CallOutcome {
    /// Returns `true` if the call succeeded.
    pub const fn is_ok(&self) -> bool {
        self.status == status::OK
    }
}

/// Maximum number of calls one batch may carry.
pub const MAX_BATCH_CALLS: u64 = 64;

// The register scalar codec ([`RegScalar`]) lives in `sanctorum-trust`
// (re-exported at the top of this module): tainted register values must be
// encodable without ever exposing an accessor, so the `Tainted<T>` blanket
// impl needs the trust crate's private view. All scalar impls (`u64`,
// addresses, ids, perms) live there with it.

// ---------------------------------------------------------------------------
// the call registry
// ---------------------------------------------------------------------------

/// Static description of one registered SM call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallInfo {
    /// The call number carried in `a0`.
    pub number: u64,
    /// The call's name (enum variant name).
    pub name: &'static str,
    /// Whether the call hands the hart to a different context on success
    /// (such calls manage the result registers themselves and are refused
    /// inside batches).
    pub context_switches: bool,
    /// Whether the call can change which domain may access which physical
    /// memory (the batch executor revalidates its table access after such
    /// calls).
    pub mutates_isolation: bool,
}

/// Declares the complete register-ABI call table in one place.
///
/// Each entry provides: the variant (with documented, `RegScalar`-encodable
/// fields in `a1..a5` order), the call number, the context-switch flag, and
/// the handler gluing the decoded call onto the [`SmApi`] surface. The macro
/// derives [`SmCall`], its `encode`/`decode`/metadata methods, the
/// [`CALL_TABLE`] and the dispatcher's `perform` function from this single
/// declaration.
macro_rules! sm_call_registry {
    (
        $(
            $(#[$vmeta:meta])*
            $num:literal => $Variant:ident {
                $( $(#[$fmeta:meta])* $field:ident : $fty:ty ),* $(,)?
            }
            switches: $switches:literal,
            isolation: $isolation:literal,
            handler: ($sm:ident, $session:ident) $handler:block
        )*
    ) => {
        /// A decoded SM API call (derived from the call registry).
        #[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
        pub enum SmCall {
            $(
                $(#[$vmeta])*
                $Variant {
                    $( $(#[$fmeta])* $field : $fty, )*
                },
            )*
        }

        /// Every registered call, in declaration order.
        pub const CALL_TABLE: &[CallInfo] = &[
            $( CallInfo {
                number: $num,
                name: stringify!($Variant),
                context_switches: $switches,
                mutates_isolation: $isolation,
            }, )*
        ];

        impl SmCall {
            /// Returns the call number carried in `a0`.
            pub const fn number(&self) -> u64 {
                match self {
                    $( SmCall::$Variant { .. } => $num, )*
                }
            }

            /// Returns the call's registry name.
            pub const fn name(&self) -> &'static str {
                match self {
                    $( SmCall::$Variant { .. } => stringify!($Variant), )*
                }
            }

            /// Returns `true` if a successful call hands the hart to a
            /// different context (the dispatcher must not overwrite the
            /// result registers, and batches refuse the call).
            pub const fn context_switches(&self) -> bool {
                match self {
                    $( SmCall::$Variant { .. } => $switches, )*
                }
            }

            /// Returns `true` if the call can change which domain may access
            /// which physical memory (region grants, cleans, blocks, enclave
            /// creation/teardown). After such a call a batch must revalidate
            /// its own table access.
            pub const fn mutates_isolation(&self) -> bool {
                match self {
                    $( SmCall::$Variant { .. } => $isolation, )*
                }
            }

            /// Encodes the call into the six argument registers `a0`–`a5`.
            #[allow(unused_assignments, unused_mut, unused_variables)]
            pub fn encode(&self) -> [u64; 6] {
                match self {
                    $( SmCall::$Variant { $($field),* } => {
                        let mut regs = [0u64; 6];
                        regs[0] = $num;
                        let mut slot = 1usize;
                        $(
                            regs[slot] = RegScalar::to_reg($field);
                            slot += 1;
                        )*
                        regs
                    } )*
                }
            }

            /// Decodes the argument registers back into a call.
            ///
            /// # Errors
            ///
            /// Returns [`DecodeError::UnknownCallNumber`] if `a0` does not
            /// name a registered call.
            #[allow(unused_assignments, unused_mut, unused_variables)]
            pub fn decode(regs: &[u64; 6]) -> Result<SmCall, DecodeError> {
                match regs[0] {
                    $( $num => {
                        let mut slot = 1usize;
                        Ok(SmCall::$Variant {
                            $( $field: {
                                let v = <$fty as RegScalar>::from_reg(regs[slot]);
                                slot += 1;
                                v
                            }, )*
                        })
                    } )*
                    other => Err(DecodeError::UnknownCallNumber(other)),
                }
            }
        }

        /// Performs a decoded call against the monitor on behalf of
        /// `session`, producing the register-level return value. This is the
        /// one dispatch table; both the single-call ecall path and the batch
        /// executor go through it.
        pub(crate) fn perform(
            sm: &SecurityMonitor,
            session: CallerSession,
            call: SmCall,
        ) -> SmResult<u64> {
            match call {
                $( SmCall::$Variant { $($field),* } => {
                    #[allow(unused_variables)]
                    let $sm = sm;
                    #[allow(unused_variables)]
                    let $session = session;
                    $handler
                } )*
            }
        }
    };
}

sm_call_registry! {
    /// Create an enclave over one memory region.
    1 => CreateEnclave {
        /// Base of the enclave virtual range.
        evrange_base: VirtAddr,
        /// Length of the enclave virtual range.
        evrange_len: u64,
        /// The single region dedicated to the enclave (the register ABI
        /// carries one; multi-region enclaves use repeated grants).
        region: RegionId,
    }
    switches: false,
    isolation: true,
    handler: (sm, session) {
        sm.create_enclave(session, evrange_base, evrange_len, &[region])
            .map(|eid| eid.as_u64())
    }

    /// Reserve the enclave's page tables.
    2 => AllocatePageTable {
        /// Target enclave.
        eid: EnclaveId,
    }
    switches: false,
    isolation: false,
    handler: (sm, session) {
        sm.allocate_page_table(session, eid).map(|root| root.as_u64())
    }

    /// Load one page of initial contents.
    3 => LoadPage {
        /// Target enclave.
        eid: EnclaveId,
        /// Destination virtual address inside `evrange`.
        vaddr: VirtAddr,
        /// Source physical address in OS memory (untrusted until sanitized).
        src: Tainted<PhysAddr>,
        /// Permission bits (R=1, W=2, X=4).
        perms: MemPerms,
    }
    switches: false,
    isolation: false,
    handler: (sm, session) {
        sm.load_page(session, eid, vaddr, src, perms).map(|p| p.as_u64())
    }

    /// Create an enclave thread during loading.
    4 => LoadThread {
        /// Target enclave.
        eid: EnclaveId,
        /// Entry program counter.
        entry_pc: u64,
    }
    switches: false,
    isolation: false,
    handler: (sm, session) {
        sm.load_thread(session, eid, entry_pc, None)
    }

    /// Seal the enclave and finalize its measurement.
    5 => InitEnclave {
        /// Target enclave.
        eid: EnclaveId,
    }
    switches: false,
    isolation: false,
    handler: (sm, session) {
        sm.init_enclave(session, eid).map(|_| 0)
    }

    /// Destroy an enclave.
    6 => DeleteEnclave {
        /// Target enclave.
        eid: EnclaveId,
    }
    switches: false,
    isolation: true,
    handler: (sm, session) {
        sm.delete_enclave(session, eid).map(|_| 0)
    }

    /// Schedule an enclave thread onto the calling core.
    7 => EnterEnclave {
        /// Target enclave.
        eid: EnclaveId,
        /// Thread to run.
        tid: u64,
    }
    switches: true,
    isolation: false,
    handler: (sm, session) {
        sm.enter_enclave(session, eid, tid).map(|entry| entry.entry_pc)
    }

    /// Voluntary enclave exit from the calling core.
    8 => ExitEnclave {}
    switches: true,
    isolation: false,
    handler: (sm, session) {
        sm.exit_enclave(session).map(|c| c.count())
    }

    /// Block a memory region resource.
    9 => BlockRegion {
        /// The region.
        region: RegionId,
    }
    switches: false,
    isolation: true,
    handler: (sm, session) {
        sm.block_resource(session, ResourceId::Region(region)).map(|_| 0)
    }

    /// Clean a blocked memory region resource.
    10 => CleanRegion {
        /// The region.
        region: RegionId,
    }
    switches: false,
    isolation: true,
    handler: (sm, session) {
        sm.clean_resource(session, ResourceId::Region(region)).map(|c| c.count())
    }

    /// Grant an available region to the untrusted OS (`owner_eid == 0`) or to
    /// an enclave.
    11 => GrantRegion {
        /// The region.
        region: RegionId,
        /// New owner enclave id, or 0 for the untrusted OS.
        owner_eid: u64,
    }
    switches: false,
    isolation: true,
    handler: (sm, session) {
        let owner = if owner_eid == 0 {
            DomainKind::Untrusted
        } else {
            DomainKind::Enclave(EnclaveId::new(owner_eid))
        };
        sm.grant_resource(session, ResourceId::Region(region), owner).map(|_| 0)
    }

    /// Accept mail from a sender into one of the caller's mailboxes.
    12 => AcceptMail {
        /// Mailbox index.
        mailbox: u64,
        /// Sender id (enclave id value, or 0 for the OS).
        sender_id: u64,
    }
    switches: false,
    isolation: false,
    handler: (sm, session) {
        sm.accept_mail(session, mailbox as usize, sender_id).map(|_| 0)
    }

    /// Send mail: the message bytes are read from untrusted memory.
    13 => SendMail {
        /// Recipient enclave.
        recipient: EnclaveId,
        /// Physical address of the message (untrusted until sanitized).
        msg_addr: Tainted<PhysAddr>,
        /// Message length in bytes.
        msg_len: u64,
    }
    switches: false,
    isolation: false,
    handler: (sm, session) {
        if msg_len as usize > crate::mailbox::MAX_MAIL_LEN {
            return Err(SmError::InvalidArgument { reason: "mail message too large" });
        }
        let mut buf = vec![0u8; msg_len as usize];
        if msg_len == 0 {
            // An empty message still names a buffer address; the (vacuous)
            // read it implies only requires the address to sit within DRAM
            // bounds, like the zero-length copy it replaces.
            sm.sanitizer().check_empty::<ReadAccess>(msg_addr).map_err(|_| SmError::Memory)?;
        } else {
            // The caller must itself be able to read the whole message
            // buffer — proving only its first byte would let a buffer placed
            // at the end of the caller's region leak the neighbouring
            // region's contents into the mail.
            let span = sm
                .sanitizer()
                .check_span::<ReadAccess>(
                    session.domain(),
                    msg_addr.spanning(msg_len),
                    SpanPolicy::PLAIN,
                )
                .map_err(|_| SmError::Unauthorized)?;
            sm.machine().read_span(&span, 0, &mut buf)?;
        }
        sm.send_mail(session, recipient, Tainted::new(&buf)).map(|_| 0)
    }

    /// Fetch waiting mail into a caller-supplied buffer.
    14 => GetMail {
        /// Mailbox index.
        mailbox: u64,
        /// Physical address of the output buffer (untrusted until sanitized).
        out_addr: Tainted<PhysAddr>,
        /// Capacity of the output buffer.
        out_len: u64,
    }
    switches: false,
    isolation: false,
    handler: (sm, session) {
        // The whole output window must be caller-writable, for the same
        // reason SendMail checks its whole source span. Messages never
        // exceed MAX_MAIL_LEN, so capping the probe there bounds the check
        // without narrowing what can actually be written.
        let probe_len = out_len.min(crate::mailbox::MAX_MAIL_LEN as u64);
        let out_span = if probe_len == 0 {
            None
        } else {
            Some(
                sm.sanitizer()
                    .check_span::<WriteAccess>(
                        session.domain(),
                        out_addr.spanning(probe_len),
                        SpanPolicy::PLAIN,
                    )
                    .map_err(|_| SmError::Unauthorized)?,
            )
        };
        // The length check and the consumption are one atomic operation: a
        // message too large for the caller's buffer is rejected while it is
        // still queued (the seed consumed it first, destroying mail a
        // too-small buffer could never hold), and no concurrent consumer
        // can swap the queue head between a separate probe and the fetch.
        let (message, _sender) =
            sm.get_mail_bounded(session, mailbox as usize, out_len as usize)?;
        match &out_span {
            Some(span) => sm.machine().write_span(span, 0, &message)?,
            None => {
                // A zero-capacity buffer admits only an empty message; its
                // (vacuous) write still requires an address within DRAM.
                sm.sanitizer().check_empty::<WriteAccess>(out_addr).map_err(|_| SmError::Memory)?;
            }
        }
        Ok(message.len() as u64)
    }

    /// Read a public identity field; returns the field's length.
    15 => GetField {
        /// Field selector (see [`crate::monitor::PublicField`]).
        field: u64,
    }
    switches: false,
    isolation: false,
    handler: (sm, session) {
        let field = PublicField::from_selector(field)
            .ok_or(SmError::InvalidArgument { reason: "unknown field" })?;
        Ok(sm.get_field(session, field).len() as u64)
    }

    /// Execute a table of packed calls in one trap (see [`crate::dispatch`]
    /// for the 64-byte-per-entry wire layout); returns the number of entries
    /// executed.
    16 => Batch {
        /// Physical address of the call table (untrusted until sanitized).
        table: Tainted<PhysAddr>,
        /// Number of packed calls in the table.
        count: u64,
    }
    switches: false,
    isolation: false,
    handler: (sm, session) {
        sm.run_packed_batch(session, table, count)
    }

    /// Non-destructive probe of the oldest waiting message: returns its
    /// length without consuming it (callers size their `GetMail` buffer from
    /// this).
    17 => PeekMail {
        /// Mailbox index.
        mailbox: u64,
    }
    switches: false,
    isolation: false,
    handler: (sm, session) {
        sm.peek_mail(session, mailbox as usize).map(|(len, _sender)| len as u64)
    }
}

/// Errors produced when decoding the register file into an [`SmCall`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The call number in `a0` is not recognised.
    UnknownCallNumber(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownCallNumber(n) => write!(f, "unknown SM call number {n}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// status codes
// ---------------------------------------------------------------------------

/// Status codes returned in `a0` after an SM call.
///
/// Codes `1..=14` and [`status::AGAIN`] are in bijection with the [`SmError`]
/// variant classes (see [`status_of`] and [`SmError::from_status`]);
/// [`status::ILLEGAL_CALL`] is reserved for environment calls that do not
/// decode to a registered call at all and therefore has no `SmError`
/// counterpart.
pub mod status {
    /// Call succeeded.
    pub const OK: u64 = 0;
    /// Caller not authorized ([`crate::error::SmError::Unauthorized`]).
    pub const UNAUTHORIZED: u64 = 1;
    /// Unknown enclave ([`crate::error::SmError::UnknownEnclave`]).
    pub const UNKNOWN_ENCLAVE: u64 = 2;
    /// Unknown thread ([`crate::error::SmError::UnknownThread`]).
    pub const UNKNOWN_THREAD: u64 = 3;
    /// Object in the wrong lifecycle state
    /// ([`crate::error::SmError::InvalidState`]).
    pub const INVALID_STATE: u64 = 4;
    /// Malformed arguments ([`crate::error::SmError::InvalidArgument`]).
    pub const INVALID_ARGUMENT: u64 = 5;
    /// Page-load order violation
    /// ([`crate::error::SmError::MeasurementOrderViolation`]).
    pub const MEASUREMENT_ORDER: u64 = 6;
    /// Unknown machine resource ([`crate::error::SmError::UnknownResource`]).
    pub const UNKNOWN_RESOURCE: u64 = 7;
    /// Forbidden resource transition
    /// ([`crate::error::SmError::ResourceStateViolation`]).
    pub const RESOURCE_STATE: u64 = 8;
    /// Out of resources ([`crate::error::SmError::OutOfResources`]).
    pub const NO_RESOURCES: u64 = 9;
    /// Concurrent transaction; retry
    /// ([`crate::error::SmError::ConcurrentCall`]).
    pub const CONCURRENT: u64 = 10;
    /// Recipient not accepting mail from this sender
    /// ([`crate::error::SmError::MailNotAccepted`]).
    pub const MAIL_NOT_ACCEPTED: u64 = 11;
    /// Mailbox empty or full
    /// ([`crate::error::SmError::MailboxUnavailable`]).
    pub const MAILBOX_UNAVAILABLE: u64 = 12;
    /// Isolation backend failure ([`crate::error::SmError::Platform`]).
    pub const PLATFORM: u64 = 13;
    /// Physical memory access failure ([`crate::error::SmError::Memory`]).
    pub const MEMORY: u64 = 14;
    /// The environment call did not decode to a registered SM call (no
    /// `SmError` counterpart; see [`crate::api::SmCall::decode`]).
    pub const ILLEGAL_CALL: u64 = 15;
    /// Transient fault; the call was rolled back or the target region is
    /// quarantined — back off and retry ([`crate::error::SmError::Again`]).
    pub const AGAIN: u64 = 16;
    /// Sentinel pre-filled into a batch entry's status word by
    /// [`crate::monitor::SecurityMonitor::stage_batch`]; any entry still
    /// carrying it after the batch returns was never examined (the batch
    /// aborted earlier). Never returned by the monitor for an executed call.
    pub const NOT_RUN: u64 = u64::MAX;
}

/// Maps an API error to its register-level status code.
///
/// Every [`SmError`] variant class has its own code; the mapping is a
/// bijection with [`SmError::from_status`] (asserted by the
/// `status_mapping_is_a_bijection` test below).
pub fn status_of(err: &SmError) -> u64 {
    match err {
        SmError::Unauthorized => status::UNAUTHORIZED,
        SmError::UnknownEnclave(_) => status::UNKNOWN_ENCLAVE,
        SmError::UnknownThread(_) => status::UNKNOWN_THREAD,
        SmError::InvalidState { .. } => status::INVALID_STATE,
        SmError::InvalidArgument { .. } => status::INVALID_ARGUMENT,
        SmError::MeasurementOrderViolation => status::MEASUREMENT_ORDER,
        SmError::UnknownResource => status::UNKNOWN_RESOURCE,
        SmError::ResourceStateViolation { .. } => status::RESOURCE_STATE,
        SmError::OutOfResources { .. } => status::NO_RESOURCES,
        SmError::ConcurrentCall => status::CONCURRENT,
        SmError::MailNotAccepted => status::MAIL_NOT_ACCEPTED,
        SmError::MailboxUnavailable => status::MAILBOX_UNAVAILABLE,
        SmError::Platform(_) => status::PLATFORM,
        SmError::Memory => status::MEMORY,
        SmError::Again => status::AGAIN,
    }
}

impl SmError {
    /// Inverse of [`status_of`]: reconstructs the canonical error for a
    /// status code. Variant payloads (ids, reason strings) do not travel
    /// through the one-word status register, so the reconstructed error
    /// carries canonical placeholders; the variant *class* round-trips
    /// exactly.
    ///
    /// Returns `None` for [`status::OK`], [`status::ILLEGAL_CALL`] and
    /// unassigned codes.
    pub fn from_status(code: u64) -> Option<SmError> {
        Some(match code {
            status::UNAUTHORIZED => SmError::Unauthorized,
            status::UNKNOWN_ENCLAVE => SmError::UnknownEnclave(EnclaveId::new(0)),
            status::UNKNOWN_THREAD => SmError::UnknownThread(0),
            status::INVALID_STATE => SmError::InvalidState { reason: "reported via status code" },
            status::INVALID_ARGUMENT => {
                SmError::InvalidArgument { reason: "reported via status code" }
            }
            status::MEASUREMENT_ORDER => SmError::MeasurementOrderViolation,
            status::UNKNOWN_RESOURCE => SmError::UnknownResource,
            status::RESOURCE_STATE => {
                SmError::ResourceStateViolation { reason: "reported via status code" }
            }
            status::NO_RESOURCES => {
                SmError::OutOfResources { resource: "reported via status code" }
            }
            status::CONCURRENT => SmError::ConcurrentCall,
            status::MAIL_NOT_ACCEPTED => SmError::MailNotAccepted,
            status::MAILBOX_UNAVAILABLE => SmError::MailboxUnavailable,
            status::PLATFORM => SmError::Platform(IsolationError::ResourceExhausted {
                resource: "reported via status code",
            }),
            status::MEMORY => SmError::Memory,
            status::AGAIN => SmError::Again,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(call: SmCall) {
        let encoded = call.encode();
        let decoded = SmCall::decode(&encoded).expect("decodes");
        assert_eq!(decoded, call);
        assert_eq!(encoded[0], call.number());
    }

    fn sample_calls() -> Vec<SmCall> {
        vec![
            SmCall::CreateEnclave {
                evrange_base: VirtAddr::new(0x10000),
                evrange_len: 0x8000,
                region: RegionId::new(3),
            },
            SmCall::AllocatePageTable { eid: EnclaveId::new(0x8010_0000) },
            SmCall::LoadPage {
                eid: EnclaveId::new(0x8010_0000),
                vaddr: VirtAddr::new(0x11000),
                src: PhysAddr::new(0x8200_0000).into(),
                perms: MemPerms::RX,
            },
            SmCall::LoadThread { eid: EnclaveId::new(1), entry_pc: 0x40 },
            SmCall::InitEnclave { eid: EnclaveId::new(1) },
            SmCall::DeleteEnclave { eid: EnclaveId::new(1) },
            SmCall::EnterEnclave { eid: EnclaveId::new(1), tid: 0x1001 },
            SmCall::ExitEnclave {},
            SmCall::BlockRegion { region: RegionId::new(7) },
            SmCall::CleanRegion { region: RegionId::new(7) },
            SmCall::GrantRegion { region: RegionId::new(7), owner_eid: 0 },
            SmCall::AcceptMail { mailbox: 1, sender_id: 0x8020_0000 },
            SmCall::SendMail {
                recipient: EnclaveId::new(0x8020_0000),
                msg_addr: PhysAddr::new(0x8300_0000).into(),
                msg_len: 64,
            },
            SmCall::GetMail {
                mailbox: 0,
                out_addr: PhysAddr::new(0x8300_1000).into(),
                out_len: 1024,
            },
            SmCall::GetField { field: 2 },
            SmCall::Batch { table: PhysAddr::new(0x8300_2000).into(), count: 4 },
            SmCall::PeekMail { mailbox: 2 },
        ]
    }

    #[test]
    fn all_registered_calls_round_trip() {
        let samples = sample_calls();
        // One sample per registry row, so new calls must extend this test.
        assert_eq!(samples.len(), CALL_TABLE.len());
        for call in samples {
            round_trip(call);
        }
    }

    #[test]
    fn call_table_is_consistent() {
        // Numbers are unique and match what the enum reports.
        let mut numbers: Vec<u64> = CALL_TABLE.iter().map(|c| c.number).collect();
        numbers.sort_unstable();
        numbers.dedup();
        assert_eq!(numbers.len(), CALL_TABLE.len(), "duplicate call numbers");
        for (call, info) in sample_calls().iter().zip(CALL_TABLE) {
            assert_eq!(call.number(), info.number);
            assert_eq!(call.name(), info.name);
            assert_eq!(call.context_switches(), info.context_switches);
            assert_eq!(call.mutates_isolation(), info.mutates_isolation);
        }
        // Exactly the two scheduling calls switch context.
        let switching: Vec<&str> = CALL_TABLE
            .iter()
            .filter(|c| c.context_switches)
            .map(|c| c.name)
            .collect();
        assert_eq!(switching, ["EnterEnclave", "ExitEnclave"]);
        // Exactly the resource/lifecycle calls that reprogram the isolation
        // primitive are flagged for batch-table revalidation.
        let isolating: Vec<&str> = CALL_TABLE
            .iter()
            .filter(|c| c.mutates_isolation)
            .map(|c| c.name)
            .collect();
        assert_eq!(
            isolating,
            ["CreateEnclave", "DeleteEnclave", "BlockRegion", "CleanRegion", "GrantRegion"]
        );
    }

    #[test]
    fn unknown_call_number_rejected() {
        assert_eq!(
            SmCall::decode(&[999, 0, 0, 0, 0, 0]),
            Err(DecodeError::UnknownCallNumber(999))
        );
        assert_eq!(
            SmCall::decode(&[0, 0, 0, 0, 0, 0]),
            Err(DecodeError::UnknownCallNumber(0))
        );
    }

    #[test]
    fn status_mapping_is_a_bijection() {
        // Canonical representative of every SmError variant class.
        let representatives = [
            SmError::Unauthorized,
            SmError::UnknownEnclave(EnclaveId::new(0x80)),
            SmError::UnknownThread(9),
            SmError::InvalidState { reason: "r" },
            SmError::InvalidArgument { reason: "r" },
            SmError::MeasurementOrderViolation,
            SmError::UnknownResource,
            SmError::ResourceStateViolation { reason: "r" },
            SmError::OutOfResources { resource: "r" },
            SmError::ConcurrentCall,
            SmError::MailNotAccepted,
            SmError::MailboxUnavailable,
            SmError::Platform(IsolationError::UnknownRegion(RegionId::new(1))),
            SmError::Memory,
            SmError::Again,
        ];

        // Compile-time exhaustiveness: every SmError variant class must be
        // named here with no wildcard arm, so adding a variant breaks this
        // test at compile time until a representative (and status code) is
        // added above.
        for err in &representatives {
            match err {
                SmError::Unauthorized
                | SmError::UnknownEnclave(_)
                | SmError::UnknownThread(_)
                | SmError::InvalidState { .. }
                | SmError::InvalidArgument { .. }
                | SmError::MeasurementOrderViolation
                | SmError::UnknownResource
                | SmError::ResourceStateViolation { .. }
                | SmError::OutOfResources { .. }
                | SmError::ConcurrentCall
                | SmError::MailNotAccepted
                | SmError::MailboxUnavailable
                | SmError::Platform(_)
                | SmError::Memory
                | SmError::Again => {}
            }
        }

        // Injective: each class maps to a distinct, non-OK code...
        let mut codes: Vec<u64> = representatives.iter().map(status_of).collect();
        assert!(codes.iter().all(|&c| c != status::OK && c != status::ILLEGAL_CALL));
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), representatives.len(), "status codes must be distinct");
        // ...exactly the assigned range: 1..=14 plus AGAIN (15 is reserved
        // for ILLEGAL_CALL, which has no SmError counterpart).
        let expected: Vec<u64> = (1..=14).chain([status::AGAIN]).collect();
        assert_eq!(codes, expected, "codes must cover the assigned range exactly");

        // ...and surjective onto the assigned codes, with from_status a
        // two-sided inverse on variant classes.
        for err in &representatives {
            let code = status_of(err);
            let back = SmError::from_status(code).expect("assigned code");
            assert_eq!(
                std::mem::discriminant(err),
                std::mem::discriminant(&back),
                "variant class must round-trip through {code}"
            );
            assert_eq!(status_of(&back), code, "code must round-trip exactly");
        }

        // Codes outside the assigned range have no error.
        assert_eq!(SmError::from_status(status::OK), None);
        assert_eq!(SmError::from_status(status::ILLEGAL_CALL), None);
        assert_eq!(SmError::from_status(999), None);
    }
}
