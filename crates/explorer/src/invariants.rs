//! The invariant kernel: first-class security properties checked after every
//! explorer step.
//!
//! Each check formalizes one guarantee the paper's monitor makes:
//!
//! * **resource exclusivity** — every region has exactly one Fig. 2 state,
//!   regions owned by enclaves belong to live enclaves, live enclaves own
//!   their windows, protected ranges never overlap, and core occupancy is
//!   consistent with thread state;
//! * **clean-before-reuse** — a region entering the *Available* state holds
//!   only zeroes (the scrub happened before the state transition, never
//!   after);
//! * **mailbox confidentiality** — the SM-recorded sender identity of
//!   delivered mail matches the actual sending domain, and a message is only
//!   ever delivered to the enclave whose mailbox queued it;
//! * **mail quota conservation** — the fabric's outstanding-message ledger
//!   equals, sender by sender, the messages actually queued across every
//!   live enclave's mailboxes, and no sender ever exceeds the fabric quota
//!   (the anti-DoS property the multi-slot queues depend on);
//! * **no secret leakage** — no OS-visible hart register ever holds a live
//!   enclave secret (cores are scrubbed on every enclave → OS hand-off), and
//!   no OS-readable DRAM page outside the OS's own staging area ever holds
//!   one (DMA filters and access control contain enclave data);
//! * **adversary containment** — every scripted attack mounted mid-trace is
//!   blocked.
//!
//! Measurement determinism and cross-backend agreement are checked one level
//! up, in [`crate::diff`], because they compare *across* steps and worlds.
//!
//! Every check is *incremental*: the monitor's [`AuditSnapshot`] carries
//! monotone generation counters for each state component, the machine tracks
//! written pages in a dirty bitmap, and the access-control table counts its
//! mutations — so a step that changed nothing costs a handful of counter
//! compares, and a step that changed something pays only for what it
//! touched. The memory secret scan reads dirtied pages instead of rescanning
//! DRAM, which is what lets the kernel run after every step of a large seed
//! sweep; clean-before-reuse complements it by inspecting a region's full
//! contents at the moment it transitions to *Available*, covering ownership
//! hand-offs that writes alone would not flag.

use sanctorum_core::monitor::{AuditSnapshot, TestWeakening};
use sanctorum_core::resource::{ResourceId, ResourceState};
use sanctorum_hal::addr::{PhysAddr, PAGE_SIZE};
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_hal::isolation::RegionId;
use sanctorum_hal::perm::MemPerms;
use sanctorum_machine::MachineConfig;
use sanctorum_os::ops::{Op, OpOutcome, OpWorld};
use sanctorum_os::system::PlatformKind;

/// A detected violation of one invariant. The explorer stops at the first
/// violation and reports it with its replay coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The resource-exclusivity invariant broke.
    ExclusivityBroken {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// What exactly broke.
        detail: String,
    },
    /// A region became *Available* while still holding non-zero bytes.
    DirtyReuse {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// The dirty region.
        region: RegionId,
        /// Offset of the first non-zero byte inside the region.
        offset: u64,
    },
    /// Two builds of the same recipe produced different measurements.
    MeasurementMismatch {
        /// Human-readable recipe description.
        detail: String,
    },
    /// Delivered mail carried a wrong SM-recorded sender identity.
    MailboxLeak {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// The op that exposed it.
        detail: String,
    },
    /// The mail-fabric quota accounting broke: a sender exceeded its quota,
    /// or the outstanding ledger stopped agreeing with the messages actually
    /// queued across the live enclaves' mailboxes.
    MailQuotaBroken {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// What exactly broke.
        detail: String,
    },
    /// The attestation service plane degraded: a selected client ended a
    /// round without verified evidence (request dropped, reply mis-routed,
    /// or evidence unverifiable) — distinct from an identity *forgery*,
    /// which reports as [`Violation::MailboxLeak`].
    ServiceDegraded {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// The op that exposed it.
        detail: String,
    },
    /// An OS-visible register holds a live enclave secret.
    SecretLeak {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// The leaked secret value.
        secret: u64,
        /// The core whose register file holds it.
        core: u32,
        /// The register index.
        register: usize,
    },
    /// An OS-readable DRAM page (outside the OS's own staging area) holds a
    /// live enclave secret.
    SecretInMemory {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// The leaked secret value.
        secret: u64,
        /// Physical address of the leaked word.
        addr: u64,
    },
    /// Crash residue survived recovery: the mutation journal still holds
    /// pending intent entries after the monitor returned to the OS (every
    /// completed call completes its entry; only `recover()` may clear a
    /// crash's leftovers), or a quarantined region drifted out of the
    /// *Blocked* state it must hold until its scrub is retried.
    CrashResidue {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// What exactly was left behind.
        detail: String,
    },
    /// A scripted attack succeeded.
    AttackSucceeded {
        /// Platform the violation was observed on.
        platform: &'static str,
        /// The op that mounted the attack.
        detail: String,
    },
    /// The two backends' OS-visible outcomes diverged outside the declared
    /// platform capacity differences.
    Divergence {
        /// Outcome summary on Sanctum.
        sanctum: String,
        /// Outcome summary on Keystone.
        keystone: String,
    },
}

impl Violation {
    /// The violation's kind tag (used by the shrinker to decide whether a
    /// shortened trace still reproduces "the same" failure).
    pub const fn kind(&self) -> &'static str {
        match self {
            Violation::ExclusivityBroken { .. } => "exclusivity",
            Violation::DirtyReuse { .. } => "dirty-reuse",
            Violation::MeasurementMismatch { .. } => "measurement",
            Violation::MailboxLeak { .. } => "mailbox",
            Violation::MailQuotaBroken { .. } => "mail-quota",
            Violation::ServiceDegraded { .. } => "service-plane",
            Violation::SecretLeak { .. } => "secret-leak",
            Violation::SecretInMemory { .. } => "secret-in-memory",
            Violation::CrashResidue { .. } => "crash-residue",
            Violation::AttackSucceeded { .. } => "attack",
            Violation::Divergence { .. } => "divergence",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::ExclusivityBroken { platform, detail } => {
                write!(f, "[{platform}] exclusivity broken: {detail}")
            }
            Violation::DirtyReuse { platform, region, offset } => write!(
                f,
                "[{platform}] {region} became available with dirty byte at offset {offset:#x}"
            ),
            Violation::MeasurementMismatch { detail } => {
                write!(f, "measurement determinism broken: {detail}")
            }
            Violation::MailboxLeak { platform, detail } => {
                write!(f, "[{platform}] mailbox identity leak: {detail}")
            }
            Violation::MailQuotaBroken { platform, detail } => {
                write!(f, "[{platform}] mail quota accounting broken: {detail}")
            }
            Violation::ServiceDegraded { platform, detail } => {
                write!(f, "[{platform}] attestation service degraded: {detail}")
            }
            Violation::SecretLeak { platform, secret, core, register } => write!(
                f,
                "[{platform}] secret {secret:#x} visible in core{core} x{register}"
            ),
            Violation::SecretInMemory { platform, secret, addr } => write!(
                f,
                "[{platform}] secret {secret:#x} resident in OS-readable memory at {addr:#x}"
            ),
            Violation::CrashResidue { platform, detail } => {
                write!(f, "[{platform}] crash residue survived recovery: {detail}")
            }
            Violation::AttackSucceeded { platform, detail } => {
                write!(f, "[{platform}] attack succeeded: {detail}")
            }
            Violation::Divergence { sanctum, keystone } => write!(
                f,
                "backends diverged: sanctum={sanctum} keystone={keystone}"
            ),
        }
    }
}

/// Checks the mail-fabric quota conservation property over one snapshot:
/// the outstanding ledger must equal, sender by sender, the messages
/// actually queued across every live enclave's mailboxes, and no sender may
/// ever exceed [`sanctorum_core::mailbox::MAIL_SENDER_QUOTA`]. One
/// definition shared by the in-kernel check and the fabric property tests,
/// so the rule cannot silently fork.
///
/// # Errors
///
/// Returns a human-readable description of the first discrepancy.
pub fn mail_quota_conservation(audit: &AuditSnapshot) -> Result<(), String> {
    use sanctorum_core::mailbox::MAIL_SENDER_QUOTA;
    use std::collections::BTreeMap;
    let mut queued: BTreeMap<u64, u64> = BTreeMap::new();
    for enclave in &audit.enclaves {
        for (sender, _len) in &enclave.mail_queued {
            *queued.entry(*sender).or_default() += 1;
        }
    }
    let ledger: BTreeMap<u64, u64> = audit.mail_outstanding.iter().copied().collect();
    if queued != ledger {
        return Err(format!(
            "ledger {ledger:?} disagrees with queued messages {queued:?}"
        ));
    }
    if let Some((sender, count)) = ledger.iter().find(|(_, c)| **c > MAIL_SENDER_QUOTA as u64) {
        return Err(format!(
            "sender {sender:#x} holds {count} undelivered messages (quota {MAIL_SENDER_QUOTA})"
        ));
    }
    Ok(())
}

/// An [`OpWorld`] wrapped with the invariant kernel: every applied op is
/// followed by a check pass whose cost is proportional to what the op
/// actually changed — the previous step's [`AuditSnapshot`] (cheap to keep,
/// it shares its payload by `Arc`) and its generation counters tell the
/// kernel which check families can be skipped, and the machine's dirty-page
/// bitmap feeds the memory secret scan.
#[derive(Debug)]
pub struct CheckedWorld {
    /// The underlying world.
    pub world: OpWorld,
    platform: &'static str,
    /// Base of the OS staging region: the one piece of OS memory that
    /// legitimately holds enclave secrets (the OS stages page images there
    /// itself before `load_page`), so the memory secret scan excludes it.
    staging_base: PhysAddr,
    staging_len: u64,
    /// The snapshot the previous check pass ran over.
    prev: AuditSnapshot,
    /// Access-control generation the overlap check last validated.
    prev_access_generation: u64,
    /// Forces one complete pass before incremental skipping starts.
    first_check: bool,
}

impl CheckedWorld {
    /// Boots a checked world, optionally installing a deliberate monitor
    /// weakening (the explorer's self-check path).
    pub fn boot(
        platform: PlatformKind,
        config: MachineConfig,
        weaken: Option<TestWeakening>,
    ) -> Self {
        let world = OpWorld::boot(platform, config);
        world.system.monitor.weaken_for_testing(weaken);
        let prev = world.system.monitor.audit();
        let staging_base = world.os.staging_base();
        let staging_len = world.system.machine.config().dram_region_size as u64;
        Self {
            world,
            platform: platform.name(),
            staging_base,
            staging_len,
            prev,
            prev_access_generation: 0,
            first_check: true,
        }
    }

    /// The platform name this world runs on.
    pub const fn platform(&self) -> &'static str {
        self.platform
    }

    /// Applies one op and runs the invariant kernel over the result.
    ///
    /// # Errors
    ///
    /// Returns the first violation detected after the op.
    pub fn step(&mut self, hart: CoreId, op: &Op) -> Result<OpOutcome, Violation> {
        let outcome = self.world.apply(hart, op);
        if outcome.mail_identity_ok == Some(false) {
            return Err(Violation::MailboxLeak {
                platform: self.platform,
                detail: format!("{op:?}"),
            });
        }
        if outcome.service_ok == Some(false) {
            return Err(Violation::ServiceDegraded {
                platform: self.platform,
                detail: format!("{op:?}"),
            });
        }
        if outcome.attack_blocked == Some(false) {
            return Err(Violation::AttackSucceeded {
                platform: self.platform,
                detail: format!("{op:?}"),
            });
        }
        self.check_invariants()?;
        Ok(outcome)
    }

    fn region_geometry(&self, region: RegionId) -> (PhysAddr, u64) {
        let config = self.world.system.machine.config();
        let base = config
            .memory_base
            .offset((region.index() * config.dram_region_size) as u64);
        (base, config.dram_region_size as u64)
    }

    fn check_invariants(&mut self) -> Result<(), Violation> {
        let audit = self.world.system.monitor.audit();
        let machine = &self.world.system.machine;
        let fail = |detail: String| Violation::ExclusivityBroken {
            platform: self.platform,
            detail,
        };

        // --- epoch retirement -----------------------------------------
        // The audit above quiesced both table epochs, and the explorer is
        // itself quiescent between steps (no concurrent reader can hold a
        // retired snapshot), so the retire lists must have drained — any
        // residue is a leak in the epoch reclamation accounting.
        let retired = self.world.system.monitor.epoch_retired_len();
        if retired != 0 {
            return Err(fail(format!(
                "{retired} retired epoch snapshots survived a quiescent audit"
            )));
        }

        // Equal generations certify equal monitor state, so the whole
        // SM-state check family can be skipped when no SM call mutated
        // anything this step (probes, rejected calls, pure guest execution).
        let sm_changed = self.first_check || audit.generations != self.prev.generations;
        let resources_changed = self.first_check
            || audit.generations.resources != self.prev.generations.resources;

        // --- resource exclusivity -------------------------------------
        if sm_changed {
            for (id, state) in audit.resources.iter() {
                if let (ResourceId::Region(region), ResourceState::Owned(DomainKind::Enclave(eid))) =
                    (id, state)
                {
                    if audit.enclave(*eid).is_none() {
                        return Err(fail(format!("{region} owned by dead enclave {eid}")));
                    }
                }
            }
            for enclave in &audit.enclaves {
                for region in &enclave.regions {
                    match audit.resource(ResourceId::Region(*region)) {
                        Some(ResourceState::Owned(DomainKind::Enclave(owner)))
                            if owner == enclave.id => {}
                        other => {
                            return Err(fail(format!(
                                "window {region} of {} is in state {other:?}",
                                enclave.id
                            )))
                        }
                    }
                }
                // Lifecycle consistency: a measurement exists exactly once the
                // enclave is sealed.
                if enclave.initialized != enclave.measurement.is_some() {
                    return Err(fail(format!(
                        "{} initialized={} but measurement present={}",
                        enclave.id,
                        enclave.initialized,
                        enclave.measurement.is_some()
                    )));
                }
                // The running-thread count the enclave metadata carries must
                // agree with the occupancy table, and every occupied thread
                // must be one the enclave actually lists.
                let occupied = audit
                    .core_occupancy
                    .iter()
                    .filter(|(_, tid)| enclave.threads.contains(tid))
                    .count();
                if occupied != enclave.running_threads {
                    return Err(fail(format!(
                        "{} claims {} running threads but {} of its threads occupy cores",
                        enclave.id, enclave.running_threads, occupied
                    )));
                }
            }
            for (core, tid) in audit.core_occupancy.iter() {
                // Every occupied thread belongs to exactly one live enclave...
                let owners = audit
                    .enclaves
                    .iter()
                    .filter(|e| e.threads.contains(tid))
                    .count();
                if owners != 1 {
                    return Err(fail(format!(
                        "occupancy names thread {tid} on {core} but {owners} live enclaves list it"
                    )));
                }
                // ...and its own state machine agrees it runs on that core.
                match self.world.system.monitor.thread_state(*tid) {
                    Ok(state) => {
                        let running_here = matches!(
                            state,
                            sanctorum_core::thread::ThreadState::Running { core: c, .. } if c == *core
                        );
                        if !running_here {
                            return Err(fail(format!(
                                "occupancy names thread {tid} on {core} but its state is {state:?}"
                            )));
                        }
                    }
                    Err(_) => {
                        return Err(fail(format!(
                            "occupancy names unknown thread {tid} on {core}"
                        )))
                    }
                }
            }
        }

        // --- crash residue --------------------------------------------
        // Between SM calls the mutation journal must be empty: every call
        // completes its intent entry on every return path, and `recover()`
        // replays a crash's leftovers. Pending entries here mean a crash's
        // residue survived recovery (the `skip-journal-replay` weakening's
        // signature). A quarantined region must also still be *Blocked* —
        // quarantine exists precisely to pin un-scrubbed regions there.
        let pending = self.world.system.monitor.journal_pending();
        if pending != 0 {
            return Err(Violation::CrashResidue {
                platform: self.platform,
                detail: format!("{pending} journal entries still pending after recovery"),
            });
        }
        if sm_changed {
            for region in audit.quarantine.iter() {
                let state = audit.resource(ResourceId::Region(*region));
                if !matches!(state, Some(ResourceState::Blocked(_))) {
                    return Err(Violation::CrashResidue {
                        platform: self.platform,
                        detail: format!(
                            "quarantined {region} is in state {state:?}, not Blocked"
                        ),
                    });
                }
            }
        }

        // --- mail-fabric quota conservation ---------------------------
        // Gated on the fabric's own generation (send/get/teardown purge)
        // plus the enclave table's (queues live inside enclave metadata).
        let mail_changed = self.first_check
            || audit.generations.mail != self.prev.generations.mail
            || audit.generations.enclaves != self.prev.generations.enclaves;
        if mail_changed {
            if let Err(detail) = mail_quota_conservation(&audit) {
                return Err(Violation::MailQuotaBroken {
                    platform: self.platform,
                    detail,
                });
            }
        }

        // --- protected ranges never overlap ---------------------------
        // Gated on the access-control table's own mutation counter: the
        // O(ranges²) sweep only reruns when the table changed.
        let access_generation = machine.access_generation();
        if self.first_check || access_generation != self.prev_access_generation {
            let ranges = machine.protected_ranges();
            for (i, a) in ranges.iter().enumerate() {
                for b in ranges.iter().skip(i + 1) {
                    let a_end = a.base.as_u64() + a.len;
                    let b_end = b.base.as_u64() + b.len;
                    if a.base.as_u64() < b_end && b.base.as_u64() < a_end {
                        return Err(fail(format!(
                            "protected ranges overlap: {:#x}+{:#x} and {:#x}+{:#x}",
                            a.base.as_u64(),
                            a.len,
                            b.base.as_u64(),
                            b.len
                        )));
                    }
                }
            }
            self.prev_access_generation = access_generation;
        }

        // --- clean-before-reuse ---------------------------------------
        // A region's whole contents are inspected at the moment it
        // transitions to *Available*: the scrub must have happened before
        // the Fig. 2 transition. Resource transitions are step-rare, so the
        // per-step cost is the generation compare.
        let mut changed_regions: Vec<RegionId> = Vec::new();
        if resources_changed {
            for (id, state) in audit.resources.iter() {
                let ResourceId::Region(region) = id else { continue };
                // `prev` is valid from boot on (captured in `boot()`), so
                // even the forced first pass diffs against real state.
                let previous = self.prev.resource(*id);
                if previous == Some(*state) {
                    continue;
                }
                changed_regions.push(*region);
                let became_available = *state == ResourceState::Available
                    && previous != Some(ResourceState::Available);
                if became_available {
                    let (base, len) = self.region_geometry(*region);
                    let dirty_at = machine.with_memory(|mem| {
                        for offset in (0..len).step_by(PAGE_SIZE) {
                            let page = mem
                                .page_slice(base.offset(offset))
                                .expect("region memory is populated DRAM");
                            if let Some(position) = page.iter().position(|&b| b != 0) {
                                return Some(offset + position as u64);
                            }
                        }
                        None
                    });
                    if let Some(offset) = dirty_at {
                        return Err(Violation::DirtyReuse {
                            platform: self.platform,
                            region: *region,
                            offset,
                        });
                    }
                }
            }
        }

        // --- no secret in OS-visible registers ------------------------
        let secrets: Vec<u64> = self.world.live_secrets().collect();
        if !secrets.is_empty() {
            for core in 0..machine.num_harts() {
                let hart = machine.hart(CoreId::new(core as u32));
                if hart.domain.is_enclave() {
                    continue;
                }
                for (register, value) in hart.regs.iter().enumerate() {
                    if secrets.contains(value) {
                        return Err(Violation::SecretLeak {
                            platform: self.platform,
                            secret: *value,
                            core: core as u32,
                            register,
                        });
                    }
                }
            }
        }

        // --- no secret in OS-readable memory (dirty pages only) -------
        // The bitmap is drained every step so the backlog stays one step
        // deep; pages of regions whose Fig. 2 state moved this step are
        // rescanned too, since an ownership change can expose bytes written
        // (and drained) many steps ago.
        let dirty_pages = machine.drain_dirty_pages();
        if !secrets.is_empty() {
            self.scan_pages_for_secrets(&dirty_pages, &changed_regions, &secrets)?;
        }

        self.prev = audit;
        self.first_check = false;
        Ok(())
    }

    /// Scans the given DRAM pages (by index) plus every page of the given
    /// regions for 64-bit words equal to a live secret, skipping pages the
    /// untrusted domain cannot read and the OS staging area (which holds
    /// staged secrets legitimately — the OS wrote them there itself).
    fn scan_pages_for_secrets(
        &self,
        pages: &[u64],
        regions: &[RegionId],
        secrets: &[u64],
    ) -> Result<(), Violation> {
        let machine = &self.world.system.machine;
        let config = machine.config();
        let region_pages = (config.dram_region_size / PAGE_SIZE) as u64;
        let mut candidates: Vec<u64> = pages.to_vec();
        for region in regions {
            let first = region.index() as u64 * region_pages;
            candidates.extend(first..first + region_pages);
        }
        candidates.sort_unstable();
        candidates.dedup();

        let staging_end = self.staging_base.as_u64() + self.staging_len;
        // Resolve readability first (access lock), then scan every readable
        // page in place under a single memory lock.
        candidates.retain(|index| {
            let addr = config.memory_base.offset(index * PAGE_SIZE as u64);
            (addr.as_u64() < self.staging_base.as_u64() || addr.as_u64() >= staging_end)
                // Only memory the adversary can actually read can leak to it.
                && machine.check_access(DomainKind::Untrusted, addr, MemPerms::READ)
        });
        let hit = machine.with_memory(|mem| {
            for index in candidates {
                let addr = config.memory_base.offset(index * PAGE_SIZE as u64);
                let page = mem.page_slice(addr).expect("dirty pages are populated DRAM");
                for (word_index, chunk) in page.chunks_exact(8).enumerate() {
                    let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                    // Fast path: freshly scrubbed pages are all zeroes, and a
                    // secret is never zero (tagged values).
                    if word != 0 && secrets.contains(&word) {
                        return Some((word, addr.as_u64() + (word_index * 8) as u64));
                    }
                }
            }
            None
        });
        if let Some((secret, addr)) = hit {
            return Err(Violation::SecretInMemory {
                platform: self.platform,
                secret,
                addr,
            });
        }
        Ok(())
    }
}
