//! Machine-resource ownership tracking — the state machine of paper Fig. 2.
//!
//! Every isolable machine resource (a core or a DRAM region / PMP-backed
//! memory unit) is at all times in exactly one of three states:
//!
//! * **Owned** by a protection domain;
//! * **Blocked** — still assigned to its owner but flagged for release; the
//!   owner can no longer rely on it and the OS may reclaim it;
//! * **Available** — cleaned and ready to be granted to a new owner.
//!
//! The transitions (`block` by the owner or SM, `clean` by the OS, `grant` by
//! the OS) and who may perform them are enforced here; the monitor performs
//! the actual cleaning through the platform backend before completing the
//! `clean` transition.
//!
//! The map is on the monitor's hottest paths (every API call authorizes
//! against it, the explorer audits it after every step), so it is stored as
//! dense vectors indexed directly by core / region number — `state` is O(1) —
//! with two reverse indexes kept in sync by the single `set_state` choke
//! point: a per-owner resource set (`owned_by` is O(owned)) and a
//! region → enclave table for the exclusivity checks. A generation counter
//! increments on every mutation so snapshot consumers (the incremental
//! [`crate::monitor::SecurityMonitor::audit`]) can skip work when nothing
//! changed.
//!
//! For true multi-hart parallelism the monitor holds the map as a
//! [`ShardedResourceMap`]: [`RESOURCE_SHARDS`] independently locked
//! [`ResourceMap`] shards (ids interleaved by index modulo the shard
//! count), so transactions on different resources take disjoint locks and
//! only transactions on the *same* shard ever contend. See the "Locking
//! discipline" section of ARCHITECTURE.md.
//!
//! On top of the shards sits a **seqlock mirror** (`SeqMirror`): a fixed
//! array of per-region `(seq, tag, owner)` atomic triples updated by the
//! `set_state` choke point under the shard lock and read lock-free by
//! [`ShardedResourceMap::state`]. A reader that observes an odd sequence
//! word or a sequence mismatch around its field reads — a writer was
//! mid-publish — retries into the ordinary locked path, so the fast path
//! can serve stale-but-consistent state only, never a torn record.

use crate::error::{SmError, SmResult};
use crate::lockorder::{rank, LockRank, OrderedMutex};
use sanctorum_hal::domain::{CoreId, DomainKind, EnclaveId};
use sanctorum_hal::isolation::RegionId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies one isolable machine resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceId {
    /// A processor core (time-multiplexed between domains).
    Core(CoreId),
    /// An isolable memory unit (a Sanctum DRAM region or Keystone PMP range).
    Region(RegionId),
}

/// The ownership state of one resource (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceState {
    /// Owned and usable by a protection domain.
    Owned(DomainKind),
    /// Flagged for release by its owner (or the SM); awaiting cleaning.
    Blocked(DomainKind),
    /// Cleaned and ready for re-allocation.
    Available,
}

impl ResourceState {
    /// Returns the owning domain, if the resource is owned or blocked.
    pub fn owner(&self) -> Option<DomainKind> {
        match self {
            ResourceState::Owned(d) | ResourceState::Blocked(d) => Some(*d),
            ResourceState::Available => None,
        }
    }
}

/// Number of region slots in the seqlock mirror. Regions with indices at
/// or beyond this always use the locked path; the simulated machines top
/// out far below it.
pub const SEQ_MIRROR_ENTRIES: usize = 1024;

// Mirror encoding: `tag` says which Fig. 2 state the region is in (0 marks
// a slot no `set_state` has ever published — unregistered, or attached to a
// map that predates the mirror — and always falls back to the locked path);
// `owner` encodes the domain for Owned/Blocked.
const TAG_OWNED: u64 = 1;
const TAG_BLOCKED: u64 = 2;
const TAG_AVAILABLE: u64 = 3;
const OWNER_UNTRUSTED: u64 = 1;
const OWNER_SM: u64 = 2;
/// High bit marks an enclave owner; the low 63 bits carry the enclave id.
/// Enclave ids are small monotone counters (`idalloc` starts at 0x1000),
/// so the bit never collides with a real id.
const OWNER_ENCLAVE_BIT: u64 = 1 << 63;

fn encode_domain(domain: DomainKind) -> u64 {
    match domain {
        DomainKind::Untrusted => OWNER_UNTRUSTED,
        DomainKind::SecurityMonitor => OWNER_SM,
        DomainKind::Enclave(eid) => OWNER_ENCLAVE_BIT | eid.as_u64(),
    }
}

fn decode_domain(word: u64) -> Option<DomainKind> {
    match word {
        OWNER_UNTRUSTED => Some(DomainKind::Untrusted),
        OWNER_SM => Some(DomainKind::SecurityMonitor),
        w if w & OWNER_ENCLAVE_BIT != 0 => {
            Some(DomainKind::Enclave(EnclaveId::new(w & !OWNER_ENCLAVE_BIT)))
        }
        _ => None,
    }
}

/// One region's seqlock record: a sequence word (odd while a writer is
/// mid-publish) bracketing a `(tag, owner)` state encoding.
#[derive(Debug, Default)]
struct SeqEntry {
    seq: AtomicU64,
    tag: AtomicU64,
    owner: AtomicU64,
}

impl SeqEntry {
    /// Publishes `state`. Callers are serialized per entry by the shard lock
    /// (all mutations funnel through `ResourceMap::set_state`), so the two
    /// sequence bumps never interleave with another writer's.
    fn record(&self, state: ResourceState) {
        let (tag, owner) = match state {
            ResourceState::Owned(d) => (TAG_OWNED, encode_domain(d)),
            ResourceState::Blocked(d) => (TAG_BLOCKED, encode_domain(d)),
            ResourceState::Available => (TAG_AVAILABLE, 0),
        };
        let seq = self.seq.load(Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(1), Ordering::Relaxed); // odd: publish open
        fence(Ordering::Release); // field stores cannot hoist above the odd mark
        self.tag.store(tag, Ordering::Relaxed);
        self.owner.store(owner, Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(2), Ordering::Release); // even: publish closed
    }

    /// Optimistic read: `None` means "retry into the locked path" — the slot
    /// was never published, or a writer raced the field reads.
    fn read(&self) -> Option<ResourceState> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return None;
        }
        let tag = self.tag.load(Ordering::Relaxed);
        let owner = self.owner.load(Ordering::Relaxed);
        fence(Ordering::Acquire); // field loads cannot sink below the re-check
        if self.seq.load(Ordering::Relaxed) != s1 {
            return None;
        }
        match tag {
            TAG_OWNED => Some(ResourceState::Owned(decode_domain(owner)?)),
            TAG_BLOCKED => Some(ResourceState::Blocked(decode_domain(owner)?)),
            TAG_AVAILABLE => Some(ResourceState::Available),
            _ => None,
        }
    }
}

/// The lock-free read-side mirror of region states, shared by every shard
/// of a [`ShardedResourceMap`] (one writer per entry at a time — the shard
/// lock serializes them) and read by the hot `state` queries without
/// touching any shard lock.
#[derive(Debug)]
struct SeqMirror {
    entries: Vec<SeqEntry>,
}

impl SeqMirror {
    fn new() -> Self {
        Self {
            entries: (0..SEQ_MIRROR_ENTRIES).map(|_| SeqEntry::default()).collect(),
        }
    }

    /// Publishes `state` for region `index`; out-of-range regions are simply
    /// not mirrored (their readers use the locked path).
    fn record(&self, index: usize, state: ResourceState) {
        if let Some(entry) = self.entries.get(index) {
            entry.record(state);
        }
    }

    /// Optimistic read of region `index`; `None` falls back to the lock.
    fn read(&self, index: usize) -> Option<ResourceState> {
        self.entries.get(index)?.read()
    }
}

/// The resource-ownership map maintained by the SM.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct ResourceMap {
    /// Core states, indexed by [`CoreId`]; `None` = never registered.
    cores: Vec<Option<ResourceState>>,
    /// Region states, indexed by [`RegionId`]; `None` = never registered.
    regions: Vec<Option<ResourceState>>,
    /// Reverse index: every resource owned (or blocked) by a domain, in
    /// [`ResourceId`] order.
    by_owner: BTreeMap<DomainKind, BTreeSet<ResourceId>>,
    /// Reverse index: the enclave owning (or having blocked) each region,
    /// indexed by [`RegionId`].
    region_enclave: Vec<Option<EnclaveId>>,
    /// Registered-resource count.
    registered: usize,
    /// Bumped on every mutation; lets snapshot consumers detect "no change".
    generation: u64,
    /// The seqlock mirror this map publishes region transitions to, when it
    /// is a shard of a [`ShardedResourceMap`]. Skipped by serde and dropped
    /// by `Clone`: a deserialized or cloned map is a detached snapshot and
    /// must not write into the live read-side.
    #[serde(skip)]
    mirror: Option<Arc<SeqMirror>>,
}

impl Clone for ResourceMap {
    fn clone(&self) -> Self {
        Self {
            cores: self.cores.clone(),
            regions: self.regions.clone(),
            by_owner: self.by_owner.clone(),
            region_enclave: self.region_enclave.clone(),
            registered: self.registered,
            generation: self.generation,
            // A clone is a detached snapshot; it must not publish into the
            // original map's lock-free read-side.
            mirror: None,
        }
    }
}

impl ResourceMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Monotone mutation counter: two equal generations bracket a span in
    /// which no registration or state transition happened.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn slot(&self, id: ResourceId) -> Option<&Option<ResourceState>> {
        match id {
            ResourceId::Core(core) => self.cores.get(core.index()),
            ResourceId::Region(region) => self.regions.get(region.index()),
        }
    }

    /// Writes `state` for `id`, keeping both reverse indexes in sync. All
    /// mutations funnel through here.
    fn set_state(&mut self, id: ResourceId, state: ResourceState) {
        let (vec, index) = match id {
            ResourceId::Core(core) => (&mut self.cores, core.index()),
            ResourceId::Region(region) => (&mut self.regions, region.index()),
        };
        if index >= vec.len() {
            vec.resize(index + 1, None);
        }
        let previous = vec[index].replace(state);
        if previous.is_none() {
            self.registered += 1;
        }
        if let Some(old_owner) = previous.and_then(|s| s.owner()) {
            if let Some(set) = self.by_owner.get_mut(&old_owner) {
                set.remove(&id);
                if set.is_empty() {
                    self.by_owner.remove(&old_owner);
                }
            }
        }
        if let Some(new_owner) = state.owner() {
            self.by_owner.entry(new_owner).or_default().insert(id);
        }
        if let ResourceId::Region(region) = id {
            if region.index() >= self.region_enclave.len() {
                self.region_enclave.resize(region.index() + 1, None);
            }
            self.region_enclave[region.index()] = match state.owner() {
                Some(DomainKind::Enclave(eid)) => Some(eid),
                _ => None,
            };
            // Publish to the lock-free read-side while still holding the
            // shard lock (our caller's), so per-entry writers never race.
            if let Some(mirror) = &self.mirror {
                mirror.record(region.index(), state);
            }
        }
        self.generation += 1;
    }

    /// Attaches the shared seqlock mirror this map publishes region
    /// transitions to. Called once per shard by [`ShardedResourceMap::new`],
    /// before the map is ever mutated.
    fn attach_mirror(&mut self, mirror: Arc<SeqMirror>) {
        self.mirror = Some(mirror);
    }

    /// Registers a resource with an initial owner (used at boot: all cores
    /// and regions start out owned by the untrusted OS, except the regions
    /// the SM reserves for itself).
    pub fn register(&mut self, id: ResourceId, initial: ResourceState) {
        self.set_state(id, initial);
    }

    /// Returns the state of a resource.
    ///
    /// # Errors
    ///
    /// Returns [`SmError::UnknownResource`] if the resource was never
    /// registered.
    pub fn state(&self, id: ResourceId) -> SmResult<ResourceState> {
        self.slot(id).copied().flatten().ok_or(SmError::UnknownResource)
    }

    /// Returns every resource currently owned (or blocked) by `domain`, in
    /// [`ResourceId`] order.
    pub fn owned_by(&self, domain: DomainKind) -> Vec<ResourceId> {
        self.by_owner
            .get(&domain)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Returns the enclave owning (or having blocked) `region`, if any —
    /// the reverse of the grant that dedicated the region.
    pub fn enclave_of_region(&self, region: RegionId) -> Option<EnclaveId> {
        self.region_enclave.get(region.index()).copied().flatten()
    }

    /// `block_resource`: flags an owned resource for release.
    ///
    /// Allowed for the owner itself or the SM (which blocks all of an
    /// enclave's resources when the OS deletes it).
    ///
    /// # Errors
    ///
    /// Fails if the caller is neither the owner nor the SM, or if the
    /// resource is not currently owned.
    pub fn block(&mut self, caller: DomainKind, id: ResourceId) -> SmResult<()> {
        let state = self.state(id)?;
        match state {
            ResourceState::Owned(owner) => {
                if caller != owner && caller != DomainKind::SecurityMonitor {
                    return Err(SmError::Unauthorized);
                }
                self.set_state(id, ResourceState::Blocked(owner));
                Ok(())
            }
            ResourceState::Blocked(_) => Err(SmError::ResourceStateViolation {
                reason: "resource is already blocked",
            }),
            ResourceState::Available => Err(SmError::ResourceStateViolation {
                reason: "cannot block an available resource",
            }),
        }
    }

    /// `clean_resource`: completes the release of a blocked resource, making
    /// it available. Only the untrusted OS (which orchestrates machine
    /// resources) or the SM may trigger cleaning; the *actual* cleaning of
    /// hardware state is performed by the monitor before it calls this.
    ///
    /// # Errors
    ///
    /// Fails if the caller is not the OS or SM, or the resource is not
    /// blocked.
    pub fn clean(&mut self, caller: DomainKind, id: ResourceId) -> SmResult<DomainKind> {
        if caller != DomainKind::Untrusted && caller != DomainKind::SecurityMonitor {
            return Err(SmError::Unauthorized);
        }
        let state = self.state(id)?;
        match state {
            ResourceState::Blocked(previous_owner) => {
                self.set_state(id, ResourceState::Available);
                Ok(previous_owner)
            }
            ResourceState::Owned(_) => Err(SmError::ResourceStateViolation {
                reason: "resource must be blocked before cleaning",
            }),
            ResourceState::Available => Err(SmError::ResourceStateViolation {
                reason: "resource is already available",
            }),
        }
    }

    /// `grant_resource`: assigns an available resource to a new owner. Only
    /// the OS (or the SM acting during enclave creation on the OS's behalf)
    /// makes allocation decisions.
    ///
    /// # Errors
    ///
    /// Fails if the caller is not the OS or SM, or the resource is not
    /// available.
    pub fn grant(
        &mut self,
        caller: DomainKind,
        id: ResourceId,
        new_owner: DomainKind,
    ) -> SmResult<()> {
        if caller != DomainKind::Untrusted && caller != DomainKind::SecurityMonitor {
            return Err(SmError::Unauthorized);
        }
        let state = self.state(id)?;
        match state {
            ResourceState::Available => {
                self.set_state(id, ResourceState::Owned(new_owner));
                Ok(())
            }
            _ => Err(SmError::ResourceStateViolation {
                reason: "resource must be available to be granted",
            }),
        }
    }

    /// Crash-recovery escape hatch: forces a registered resource into
    /// `state` regardless of the Fig. 2 transition rules. Only
    /// `SecurityMonitor::recover` uses this, to repair a journaled mutation
    /// that crashed between its intent record and its commit (e.g. a grant
    /// whose backend write landed but whose map transition did not) — every
    /// normal API path goes through [`Self::block`] / [`Self::clean`] /
    /// [`Self::grant`].
    ///
    /// # Errors
    ///
    /// Returns [`SmError::UnknownResource`] if the resource was never
    /// registered; recovery repairs state, it does not invent resources.
    pub fn recover_force(&mut self, id: ResourceId, state: ResourceState) -> SmResult<()> {
        let _ = self.state(id)?;
        self.set_state(id, state);
        Ok(())
    }

    /// Verifies the global exclusivity invariant: every resource has exactly
    /// one state entry (structural), owned resources have exactly one owner,
    /// and the reverse indexes agree with the dense state tables. Returns the
    /// number of resources checked.
    ///
    /// # Panics
    ///
    /// Panics if a reverse index disagrees with the state tables (which would
    /// mean a mutation bypassed `set_state`).
    pub fn check_exclusivity(&self) -> usize {
        let indexed: usize = self.by_owner.values().map(|set| set.len()).sum();
        let owned = self
            .iter()
            .filter(|(_, state)| state.owner().is_some())
            .count();
        assert_eq!(indexed, owned, "owner index out of sync with state table");
        for (owner, set) in &self.by_owner {
            for id in set {
                assert_eq!(
                    self.state(*id).ok().and_then(|s| s.owner()),
                    Some(*owner),
                    "owner index names {id:?} under the wrong domain"
                );
            }
        }
        for (index, entry) in self.region_enclave.iter().enumerate() {
            let region = RegionId::new(index as u32);
            let expected = match self.state(ResourceId::Region(region)).ok().and_then(|s| s.owner())
            {
                Some(DomainKind::Enclave(eid)) => Some(eid),
                _ => None,
            };
            assert_eq!(*entry, expected, "region→enclave index out of sync for {region}");
        }
        self.registered
    }

    /// Iterates over all registered resources and their states, in
    /// [`ResourceId`] order (cores before regions, ascending indices).
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, ResourceState)> + '_ {
        let cores = self
            .cores
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (ResourceId::Core(CoreId::new(i as u32)), s)));
        let regions = self
            .regions
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (ResourceId::Region(RegionId::new(i as u32)), s)));
        cores.chain(regions)
    }

    /// Collects the full state table (the audit-snapshot payload), in
    /// [`ResourceId`] order.
    pub fn snapshot(&self) -> Vec<(ResourceId, ResourceState)> {
        self.iter().collect()
    }
}

/// Number of lock shards [`ShardedResourceMap`] splits the resource space
/// across. Resource ids map onto shards by index modulo this count
/// (interleaved ranges), so a run of consecutive region ids — the typical
/// working sets of *different* enclaves — lands on *different* shards and
/// concurrent transactions on them take disjoint locks.
pub const RESOURCE_SHARDS: usize = 8;

/// Returns the shard index resource `id` lives on.
pub const fn shard_of(id: ResourceId) -> usize {
    match id {
        ResourceId::Core(core) => core.index() % RESOURCE_SHARDS,
        ResourceId::Region(region) => region.index() % RESOURCE_SHARDS,
    }
}

/// The resource map split across [`RESOURCE_SHARDS`] independently locked
/// shards, so API transactions touching different resources do not contend
/// (paper Sections IV–V: harts only serialize on the object they operate
/// on). Each shard is a complete [`ResourceMap`] holding only its own ids;
/// shard `k` carries lock rank `RESOURCE_SHARD_BASE + k`, and multi-shard
/// transactions (enclave creation over several regions, the delete sweep)
/// acquire shards in ascending index order — enforced by the debug
/// lock-order checker.
///
/// A map-wide [`ShardedResourceMap::generation`] counter (atomic, bumped by
/// the monitor after every committed transition via
/// [`ShardedResourceMap::touch`]) lets the incremental audit skip all shard
/// locks when nothing changed. The convention matches the monitor's other
/// generation counters: readers load the generation *before* collecting
/// state, so a racing mutation can only make collected state newer than the
/// recorded generation and the next audit conservatively rebuilds.
#[derive(Debug)]
pub struct ShardedResourceMap {
    /// Shard `k` holds rank `RESOURCE_SHARD_BASE + k`, so the (rare)
    /// multi-shard transactions acquire shards in ascending index order.
    shards: Vec<OrderedMutex<ResourceMap>>,
    generation: AtomicU64,
    /// The lock-free region-state mirror every shard publishes into; read
    /// by [`Self::state`] without touching any shard lock.
    mirror: Arc<SeqMirror>,
}

impl Default for ShardedResourceMap {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedResourceMap {
    /// Creates an empty sharded map.
    pub fn new() -> Self {
        let mirror = Arc::new(SeqMirror::new());
        Self {
            shards: (0..RESOURCE_SHARDS)
                .map(|k| {
                    let mut map = ResourceMap::new();
                    map.attach_mirror(Arc::clone(&mirror));
                    OrderedMutex::new(LockRank(rank::RESOURCE_SHARD_BASE + k as u16), map)
                })
                .collect(),
            generation: AtomicU64::new(0),
            mirror,
        }
    }

    /// The shard holding resource `id`.
    pub fn shard(&self, id: ResourceId) -> &OrderedMutex<ResourceMap> {
        &self.shards[shard_of(id)]
    }

    /// All shards, in ascending shard (and therefore lock-rank) order.
    pub fn shards(&self) -> &[OrderedMutex<ResourceMap>] {
        &self.shards
    }

    /// The map-wide mutation counter. Monotone; bumped by [`Self::touch`].
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Records one committed mutation. The monitor calls this after every
    /// successful transition (block / clean / grant / registration); missing
    /// a call would let the incremental audit serve stale resource state,
    /// which the audit-equivalence property test catches.
    pub fn touch(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers a resource with an initial owner (boot-time).
    pub fn register(&self, id: ResourceId, initial: ResourceState) {
        self.shard(id).lock().register(id, initial);
        self.touch();
    }

    /// Returns the state of one resource. Region queries first try the
    /// lock-free seqlock mirror — the common case on the audit/authorize hot
    /// path — and fall back to locking the region's shard when the optimistic
    /// read loses a race with a writer (or the region is unmirrored:
    /// out-of-range index, or never registered). Core queries always use the
    /// shard lock; cores are few and cold.
    ///
    /// # Errors
    ///
    /// Returns [`SmError::UnknownResource`] if the resource was never
    /// registered.
    pub fn state(&self, id: ResourceId) -> SmResult<ResourceState> {
        if let ResourceId::Region(region) = id {
            if let Some(state) = self.mirror.read(region.index()) {
                return Ok(state);
            }
        }
        self.shard(id).lock().state(id)
    }

    /// Collects the full state table in [`ResourceId`] order, locking shards
    /// in ascending order (one at a time — callers needing a transactionally
    /// consistent view must be at a quiescent point, which is where the
    /// explorer's audits run).
    pub fn snapshot(&self) -> Vec<(ResourceId, ResourceState)> {
        let mut all: Vec<(ResourceId, ResourceState)> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().iter());
        }
        all.sort_unstable_by_key(|(id, _)| *id);
        all
    }

    /// Returns every resource owned (or blocked) by `domain` across all
    /// shards, in [`ResourceId`] order. Same consistency caveat as
    /// [`Self::snapshot`].
    pub fn owned_by(&self, domain: DomainKind) -> Vec<ResourceId> {
        let mut all: Vec<ResourceId> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().owned_by(domain));
        }
        all.sort_unstable();
        all
    }

    /// Verifies every shard's exclusivity invariant; returns the total
    /// registered-resource count.
    ///
    /// # Panics
    ///
    /// Panics if any shard's reverse index disagrees with its state table.
    pub fn check_exclusivity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().check_exclusivity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_hal::domain::EnclaveId;

    fn enclave(id: u64) -> DomainKind {
        DomainKind::Enclave(EnclaveId::new(id))
    }

    fn map_with_region() -> (ResourceMap, ResourceId) {
        let mut map = ResourceMap::new();
        let id = ResourceId::Region(RegionId::new(0));
        map.register(id, ResourceState::Owned(DomainKind::Untrusted));
        (map, id)
    }

    #[test]
    fn full_lifecycle_owned_blocked_available_owned() {
        let (mut map, id) = map_with_region();
        map.block(DomainKind::Untrusted, id).unwrap();
        assert_eq!(map.state(id).unwrap(), ResourceState::Blocked(DomainKind::Untrusted));
        let prev = map.clean(DomainKind::Untrusted, id).unwrap();
        assert_eq!(prev, DomainKind::Untrusted);
        assert_eq!(map.state(id).unwrap(), ResourceState::Available);
        map.grant(DomainKind::Untrusted, id, enclave(1)).unwrap();
        assert_eq!(map.state(id).unwrap(), ResourceState::Owned(enclave(1)));
    }

    #[test]
    fn only_owner_or_sm_may_block() {
        let (mut map, id) = map_with_region();
        // A different enclave cannot block the OS's resource.
        assert_eq!(map.block(enclave(1), id), Err(SmError::Unauthorized));
        // The SM can.
        map.block(DomainKind::SecurityMonitor, id).unwrap();
    }

    #[test]
    fn enclave_owner_can_block_its_own_resource() {
        let mut map = ResourceMap::new();
        let id = ResourceId::Region(RegionId::new(3));
        map.register(id, ResourceState::Owned(enclave(1)));
        map.block(enclave(1), id).unwrap();
        assert_eq!(map.state(id).unwrap(), ResourceState::Blocked(enclave(1)));
    }

    #[test]
    fn illegal_transitions_rejected() {
        let (mut map, id) = map_with_region();
        // Owned -> Available without blocking is illegal.
        assert!(matches!(
            map.clean(DomainKind::Untrusted, id),
            Err(SmError::ResourceStateViolation { .. })
        ));
        // Owned -> Owned (re-grant) is illegal.
        assert!(matches!(
            map.grant(DomainKind::Untrusted, id, enclave(1)),
            Err(SmError::ResourceStateViolation { .. })
        ));
        map.block(DomainKind::Untrusted, id).unwrap();
        // Double block is illegal.
        assert!(matches!(
            map.block(DomainKind::Untrusted, id),
            Err(SmError::ResourceStateViolation { .. })
        ));
        map.clean(DomainKind::Untrusted, id).unwrap();
        // Double clean is illegal.
        assert!(matches!(
            map.clean(DomainKind::Untrusted, id),
            Err(SmError::ResourceStateViolation { .. })
        ));
    }

    #[test]
    fn enclaves_cannot_grant_or_clean() {
        let (mut map, id) = map_with_region();
        map.block(DomainKind::Untrusted, id).unwrap();
        assert_eq!(map.clean(enclave(1), id), Err(SmError::Unauthorized));
        map.clean(DomainKind::Untrusted, id).unwrap();
        assert_eq!(map.grant(enclave(1), id, enclave(1)), Err(SmError::Unauthorized));
    }

    #[test]
    fn unknown_resource_reported() {
        let map = ResourceMap::new();
        assert_eq!(
            map.state(ResourceId::Core(CoreId::new(9))),
            Err(SmError::UnknownResource)
        );
        // A registered neighbour does not make an unregistered index known.
        let mut map = ResourceMap::new();
        map.register(
            ResourceId::Region(RegionId::new(5)),
            ResourceState::Available,
        );
        assert_eq!(
            map.state(ResourceId::Region(RegionId::new(2))),
            Err(SmError::UnknownResource)
        );
    }

    #[test]
    fn owned_by_lists_resources() {
        let mut map = ResourceMap::new();
        map.register(
            ResourceId::Core(CoreId::new(0)),
            ResourceState::Owned(DomainKind::Untrusted),
        );
        map.register(
            ResourceId::Region(RegionId::new(1)),
            ResourceState::Owned(enclave(1)),
        );
        map.register(
            ResourceId::Region(RegionId::new(2)),
            ResourceState::Blocked(enclave(1)),
        );
        let owned = map.owned_by(enclave(1));
        assert_eq!(owned.len(), 2);
        assert_eq!(map.owned_by(DomainKind::Untrusted).len(), 1);
        assert_eq!(map.check_exclusivity(), 3);
    }

    #[test]
    fn reverse_indexes_track_transitions() {
        let mut map = ResourceMap::new();
        let region = RegionId::new(4);
        let id = ResourceId::Region(region);
        map.register(id, ResourceState::Owned(DomainKind::Untrusted));
        assert_eq!(map.enclave_of_region(region), None);

        map.block(DomainKind::Untrusted, id).unwrap();
        map.clean(DomainKind::Untrusted, id).unwrap();
        assert!(map.owned_by(DomainKind::Untrusted).is_empty());

        map.grant(DomainKind::Untrusted, id, enclave(7)).unwrap();
        assert_eq!(map.enclave_of_region(region), Some(EnclaveId::new(7)));
        assert_eq!(map.owned_by(enclave(7)), vec![id]);

        // Blocked resources still count against their owner and keep the
        // region→enclave link until cleaned.
        map.block(DomainKind::SecurityMonitor, id).unwrap();
        assert_eq!(map.enclave_of_region(region), Some(EnclaveId::new(7)));
        assert_eq!(map.owned_by(enclave(7)), vec![id]);
        map.clean(DomainKind::Untrusted, id).unwrap();
        assert_eq!(map.enclave_of_region(region), None);
        assert!(map.owned_by(enclave(7)).is_empty());
        map.check_exclusivity();
    }

    #[test]
    fn generation_counts_mutations_only() {
        let (mut map, id) = map_with_region();
        let g0 = map.generation();
        let _ = map.state(id);
        let _ = map.owned_by(DomainKind::Untrusted);
        assert_eq!(map.generation(), g0, "reads must not bump the generation");
        map.block(DomainKind::Untrusted, id).unwrap();
        assert!(map.generation() > g0);
        let g1 = map.generation();
        // A rejected transition leaves the generation unchanged.
        assert!(map.block(DomainKind::Untrusted, id).is_err());
        assert_eq!(map.generation(), g1);
    }

    #[test]
    fn sharded_map_routes_and_merges_across_shards() {
        let map = ShardedResourceMap::new();
        // Region indices 0..20 spread across all shards; a consecutive run
        // of ids therefore lands on distinct shards (the interleaved map).
        for i in 0..20u32 {
            map.register(
                ResourceId::Region(RegionId::new(i)),
                ResourceState::Owned(DomainKind::Untrusted),
            );
        }
        assert_eq!(
            shard_of(ResourceId::Region(RegionId::new(3))),
            shard_of(ResourceId::Region(RegionId::new(3 + RESOURCE_SHARDS as u32)))
        );
        assert_ne!(
            shard_of(ResourceId::Region(RegionId::new(3))),
            shard_of(ResourceId::Region(RegionId::new(4)))
        );
        // The merged snapshot is in ResourceId order despite sharding.
        let snapshot = map.snapshot();
        assert_eq!(snapshot.len(), 20);
        assert!(snapshot.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(map.owned_by(DomainKind::Untrusted).len(), 20);
        assert_eq!(map.check_exclusivity(), 20);
        // Per-shard transitions keep working through the shard lock.
        let id = ResourceId::Region(RegionId::new(9));
        map.shard(id).lock().block(DomainKind::Untrusted, id).unwrap();
        map.touch();
        assert_eq!(map.state(id).unwrap(), ResourceState::Blocked(DomainKind::Untrusted));
        assert_eq!(map.owned_by(DomainKind::Untrusted).len(), 20, "blocked still owned");
    }

    #[test]
    fn sharded_generation_is_explicitly_touched() {
        let map = ShardedResourceMap::new();
        let g0 = map.generation();
        map.register(
            ResourceId::Core(CoreId::new(0)),
            ResourceState::Owned(DomainKind::Untrusted),
        );
        assert!(map.generation() > g0, "register touches the generation");
        let g1 = map.generation();
        let _ = map.state(ResourceId::Core(CoreId::new(0)));
        let _ = map.snapshot();
        assert_eq!(map.generation(), g1, "reads must not bump the generation");
        map.touch();
        assert_eq!(map.generation(), g1 + 1);
    }

    #[test]
    fn recover_force_repairs_state_and_indexes() {
        let (mut map, id) = map_with_region();
        // Force Owned(OS) -> Blocked(enclave) directly, as recovery does when
        // it finds a half-deleted enclave's region.
        map.recover_force(id, ResourceState::Blocked(enclave(3))).unwrap();
        assert_eq!(map.state(id).unwrap(), ResourceState::Blocked(enclave(3)));
        assert_eq!(map.owned_by(enclave(3)), vec![id]);
        assert!(map.owned_by(DomainKind::Untrusted).is_empty());
        map.recover_force(id, ResourceState::Available).unwrap();
        assert!(map.owned_by(enclave(3)).is_empty());
        map.check_exclusivity();
        // Unregistered resources cannot be invented by recovery.
        assert_eq!(
            map.recover_force(ResourceId::Region(RegionId::new(9)), ResourceState::Available),
            Err(SmError::UnknownResource)
        );
    }

    #[test]
    fn seq_mirror_tracks_every_transition_through_the_fast_path() {
        let map = ShardedResourceMap::new();
        let region = RegionId::new(5);
        let id = ResourceId::Region(region);
        map.register(id, ResourceState::Owned(DomainKind::Untrusted));
        // Each locked-path mutation must be visible through the lock-free
        // read immediately after the shard lock drops.
        assert_eq!(map.state(id).unwrap(), ResourceState::Owned(DomainKind::Untrusted));
        map.shard(id).lock().block(DomainKind::Untrusted, id).unwrap();
        assert_eq!(map.state(id).unwrap(), ResourceState::Blocked(DomainKind::Untrusted));
        map.shard(id).lock().clean(DomainKind::Untrusted, id).unwrap();
        assert_eq!(map.state(id).unwrap(), ResourceState::Available);
        map.shard(id).lock().grant(DomainKind::Untrusted, id, enclave(7)).unwrap();
        assert_eq!(map.state(id).unwrap(), ResourceState::Owned(enclave(7)));
        // The fast path and the locked path agree.
        assert_eq!(map.state(id).unwrap(), map.shard(id).lock().state(id).unwrap());
    }

    #[test]
    fn seq_mirror_unregistered_and_out_of_range_regions_fall_back() {
        let map = ShardedResourceMap::new();
        // Never-registered region: tag 0 in the mirror, locked path reports
        // the authoritative error.
        assert_eq!(
            map.state(ResourceId::Region(RegionId::new(3))),
            Err(SmError::UnknownResource)
        );
        // A region beyond the mirror capacity is served by the shard lock.
        let big = ResourceId::Region(RegionId::new(SEQ_MIRROR_ENTRIES as u32 + 5));
        map.register(big, ResourceState::Available);
        assert_eq!(map.state(big).unwrap(), ResourceState::Available);
        // Cores never touch the mirror.
        map.register(ResourceId::Core(CoreId::new(1)), ResourceState::Owned(DomainKind::Untrusted));
        assert_eq!(
            map.state(ResourceId::Core(CoreId::new(1))).unwrap(),
            ResourceState::Owned(DomainKind::Untrusted)
        );
    }

    #[test]
    fn seq_mirror_clone_detaches_from_the_live_read_side() {
        let map = ShardedResourceMap::new();
        let id = ResourceId::Region(RegionId::new(2));
        map.register(id, ResourceState::Owned(DomainKind::Untrusted));
        // A cloned shard is a snapshot: mutating it must not leak into the
        // shared mirror the live map's fast path reads.
        let mut detached = map.shard(id).lock().clone();
        detached.block(DomainKind::Untrusted, id).unwrap();
        assert_eq!(
            map.state(id).unwrap(),
            ResourceState::Owned(DomainKind::Untrusted),
            "clone mutation leaked into the live mirror"
        );
    }

    #[test]
    fn seq_mirror_readers_never_observe_a_torn_record() {
        use std::sync::atomic::AtomicBool;
        let map = Arc::new(ShardedResourceMap::new());
        let id = ResourceId::Region(RegionId::new(4));
        map.register(id, ResourceState::Available);
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Every observed state must be one the writer actually
                    // published — a torn read would pair e.g. an Owned tag
                    // with a stale owner word.
                    match map.state(id).unwrap() {
                        ResourceState::Available
                        | ResourceState::Owned(DomainKind::Enclave(EnclaveId(9)))
                        | ResourceState::Blocked(DomainKind::Enclave(EnclaveId(9))) => {}
                        other => panic!("torn or invented state observed: {other:?}"),
                    }
                }
            }));
        }
        for _ in 0..2000 {
            let mut shard = map.shard(id).lock();
            shard.grant(DomainKind::Untrusted, id, enclave(9)).unwrap();
            shard.block(DomainKind::SecurityMonitor, id).unwrap();
            shard.clean(DomainKind::Untrusted, id).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            reader.join().expect("reader thread");
        }
        assert_eq!(map.state(id).unwrap(), ResourceState::Available);
    }

    #[test]
    fn iteration_order_is_cores_then_regions_ascending() {
        let mut map = ResourceMap::new();
        map.register(ResourceId::Region(RegionId::new(1)), ResourceState::Available);
        map.register(ResourceId::Core(CoreId::new(1)), ResourceState::Available);
        map.register(ResourceId::Core(CoreId::new(0)), ResourceState::Available);
        map.register(ResourceId::Region(RegionId::new(0)), ResourceState::Available);
        let ids: Vec<ResourceId> = map.iter().map(|(id, _)| id).collect();
        assert_eq!(
            ids,
            vec![
                ResourceId::Core(CoreId::new(0)),
                ResourceId::Core(CoreId::new(1)),
                ResourceId::Region(RegionId::new(0)),
                ResourceId::Region(RegionId::new(1)),
            ]
        );
        assert_eq!(map.snapshot().len(), 4);
    }
}
