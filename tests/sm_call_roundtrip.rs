//! Registry-driven `SmCall` codec properties and batch shape edge cases.
//!
//! Unlike the hand-written samples in `crates/core/src/api.rs`, these tests
//! enumerate `CALL_TABLE` itself, so a call added to the registry is fuzzed
//! automatically: for *every* registered call number and *any* argument
//! registers, decoding must succeed and `decode ∘ encode` must be the
//! identity on decoded calls (register words that don't round-trip exactly —
//! e.g. junk permission bits — must have been canonicalized by the first
//! decode, never dropped by the second). The cases are drawn through the
//! proptest shim's seeded `Runner`, so a failure prints a replayable
//! `(seed, case)` pair with a shrunken register vector.

use proptest::prelude::*;
use sanctorum_bench::boot;
use sanctorum_core::api::{status, SmApi, SmCall, CALL_TABLE, MAX_BATCH_CALLS};
use sanctorum_core::dispatch::BATCH_ENTRY_BYTES;
use sanctorum_core::session::CallerSession;
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_machine::hart::PrivilegeLevel;
use sanctorum_machine::trap::TrapCause;
use sanctorum_os::system::PlatformKind;

#[test]
fn every_registered_call_decodes_and_canonically_round_trips() {
    let args = collection::vec(any::<u64>(), 5..6);
    for info in CALL_TABLE {
        let failure = Runner::new(0x5ca1_ab1e ^ info.number)
            .cases(128)
            .run(&args, |words| {
                let regs = [
                    info.number, words[0], words[1], words[2], words[3], words[4],
                ];
                let decoded = SmCall::decode(&regs)
                    .map_err(|e| format!("registered number failed to decode: {e}"))?;
                if decoded.number() != info.number {
                    return Err("decoded call reports a different number".into());
                }
                if decoded.name() != info.name {
                    return Err("decoded call reports a different name".into());
                }
                let encoded = decoded.encode();
                if encoded[0] != info.number {
                    return Err("re-encoded a0 is not the call number".into());
                }
                let again = SmCall::decode(&encoded)
                    .map_err(|e| format!("canonical encoding failed to decode: {e}"))?;
                if again != decoded {
                    return Err(format!(
                        "decode∘encode not identity: {decoded:?} vs {again:?}"
                    ));
                }
                if again.encode() != encoded {
                    return Err("canonical encoding is not a fixed point".into());
                }
                Ok(())
            });
        if let Err(failure) = failure {
            panic!("{} codec property failed:\n{failure}", info.name);
        }
    }
}

#[test]
fn unregistered_numbers_never_decode() {
    let registered: Vec<u64> = CALL_TABLE.iter().map(|c| c.number).collect();
    let strategy = collection::vec(any::<u64>(), 6..7);
    Runner::new(0xbad_ca11)
        .cases(256)
        .run(&strategy, |words| {
            if registered.contains(&words[0]) {
                return Ok(()); // property covers unregistered numbers only
            }
            let regs = [words[0], words[1], words[2], words[3], words[4], words[5]];
            match SmCall::decode(&regs) {
                Err(_) => Ok(()),
                Ok(call) => Err(format!("junk number {:#x} decoded to {call:?}", words[0])),
            }
        })
        .unwrap_or_else(|failure| panic!("{failure}"));
}

/// Boots a system with the hart staged as the untrusted OS and returns the
/// scratch table address inside the OS staging area.
fn batch_fixture() -> (sanctorum_os::system::System, sanctorum_hal::addr::PhysAddr) {
    let (system, os) = boot(PlatformKind::Keystone);
    let core = CoreId::new(0);
    system
        .machine
        .install_context(core, DomainKind::Untrusted, PrivilegeLevel::Supervisor, None, 0);
    (system, os.staging_base().offset(0x8000))
}

#[test]
fn batch_of_zero_entries_is_rejected_on_both_paths() {
    let (system, table) = batch_fixture();
    let core = CoreId::new(0);
    // Register path: a staged Batch call with count 0.
    system
        .monitor
        .stage_call(core, &SmCall::Batch { table: table.into(), count: 0 });
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(system.monitor.read_call_result(core).0, status::INVALID_ARGUMENT);
    // Typed path.
    assert!(system.monitor.batch(CallerSession::os(), &[]).is_err());
}

#[test]
fn batch_of_sixty_five_entries_is_rejected_before_any_entry_runs() {
    let (system, table) = batch_fixture();
    let core = CoreId::new(0);
    assert_eq!(MAX_BATCH_CALLS, 64);
    let calls = vec![SmCall::GetField { field: 3 }; 65];
    // stage_batch packs 65 entries (fits in the staging region), but the
    // call itself must be refused wholesale: no entry receives a status.
    system.monitor.stage_batch(core, table, &calls).unwrap();
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(system.monitor.read_call_result(core).0, status::INVALID_ARGUMENT);
    for idx in 0..65 {
        assert_eq!(
            system.monitor.read_batch_result(table, idx).unwrap().0,
            status::NOT_RUN,
            "entry {idx} must not have been touched"
        );
    }
    // Typed path agrees.
    assert!(system.monitor.batch(CallerSession::os(), &calls).is_err());
    // Exactly the limit is fine.
    let calls = vec![SmCall::GetField { field: 3 }; 64];
    let outcomes = system.monitor.batch(CallerSession::os(), &calls).unwrap();
    assert_eq!(outcomes.len(), 64);
    assert!(outcomes.iter().all(|o| o.is_ok()));
}

#[test]
fn misaligned_and_unmapped_batch_tables_are_rejected() {
    let (system, table) = batch_fixture();
    let core = CoreId::new(0);
    // Any non-8-byte alignment is refused...
    for offset in [1u64, 2, 4, 7] {
        system.monitor.stage_call(
            core,
            &SmCall::Batch { table: table.offset(offset).into(), count: 1 },
        );
        system.monitor.handle_event(core, TrapCause::EnvironmentCall);
        assert_eq!(
            system.monitor.read_call_result(core).0,
            status::INVALID_ARGUMENT,
            "offset {offset} must be rejected"
        );
    }
    // ...while 8-byte alignment is the contract: an entry-straddling but
    // word-aligned table is accepted (the wire format has no 64-byte
    // alignment requirement).
    let staggered = table.offset(8);
    system
        .monitor
        .stage_batch(core, staggered, &[SmCall::GetField { field: 3 }])
        .unwrap();
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(system.monitor.read_call_result(core), (status::OK, 1));

    // A table outside the caller's memory is refused before any execution.
    let sm_base = system.machine.config().memory_base;
    system
        .monitor
        .stage_call(core, &SmCall::Batch { table: sm_base.into(), count: 1 });
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(system.monitor.read_call_result(core).0, status::UNAUTHORIZED);

    // A table past the end of DRAM is rejected as a memory-shape failure.
    let beyond = sm_base.offset(system.machine.config().memory_size as u64);
    system
        .monitor
        .stage_call(core, &SmCall::Batch { table: beyond.into(), count: 2 });
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(system.monitor.read_call_result(core).0, status::MEMORY);

    // A table whose *tail* leaves populated memory is rejected up front too,
    // before its (accessible, populated) first entry executes.
    let tail_out = sanctorum_hal::addr::PhysAddr::new(
        sm_base.as_u64() + system.machine.config().memory_size as u64 - BATCH_ENTRY_BYTES,
    );
    let mut entry0 = Vec::new();
    for word in (SmCall::GetField { field: 3 }).encode() {
        entry0.extend_from_slice(&word.to_le_bytes());
    }
    entry0.extend_from_slice(&status::NOT_RUN.to_le_bytes());
    system.monitor.stage_untrusted_buffer(tail_out, &entry0).unwrap();
    system
        .monitor
        .stage_call(core, &SmCall::Batch { table: tail_out.into(), count: 2 });
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(system.monitor.read_call_result(core).0, status::MEMORY);
    assert_eq!(
        system.monitor.read_batch_result(tail_out, 0).unwrap().0,
        status::NOT_RUN,
        "no entry may run when the table shape is invalid"
    );
}
