//! The crash-point sweep: exhaustive crash-consistency checking over
//! lifecycle traces.
//!
//! The monitor's crash story (`sanctorum_core::monitor`'s mutation journal
//! and `SecurityMonitor::recover`) claims that a hart lost at *any* fault
//! point leaves the monitor recoverable. This module turns that claim into
//! a sweep, following the filesystem crash-consistency methodology:
//!
//! 1. **Record** — replay a trace once with the machine's
//!    [`FaultInjector`](sanctorum_machine::FaultInjector) in recording mode,
//!    logging every fault-point crossing of every step (the trace's *crash
//!    surface*).
//! 2. **Sweep** — for each step and each crossing `k` the step performed,
//!    re-run the trace from boot with that step wrapped in
//!    [`Op::Crashed`]`{ point: k, .. }`: the injector panics at the k-th
//!    crossing, the op harness catches the unwind, calls
//!    `SecurityMonitor::recover()`, resynchronizes the OS mirror — and the
//!    explorer's full invariant kernel ([`CheckedWorld`]) then audits the
//!    recovered world, including the crash-residue check (no pending journal
//!    entries, quarantined regions pinned *Blocked*) and an
//!    `audit()`-vs-`audit_full()` cache-coherence comparison.
//! 3. **Fault** — for each fault *site* the trace crossed, re-run it once
//!    more with a persistent [`FaultPlan::FailOp`] armed on that site: every
//!    guarded backend op reports a transient fault for the whole run, which
//!    must degrade gracefully (`SmError::Again`, quarantine) rather than
//!    corrupt state; after disarming, one `recover()` must drain the
//!    quarantine and restore a fully clean audit.
//!
//! The remaining ops of the trace are executed after the crash too — the
//! recovered monitor must not merely pass an audit, it must keep serving.
//!
//! A violation is reported as a [`CrashCounterexample`]: the trace with the
//! crash embedded as a `crashed <k> <op…>` line, replayable byte for byte
//! through the text corpus format (`tests/regressions/*.trace`).

use crate::invariants::{CheckedWorld, Violation};
use crate::trace::{format_trace, TracedOp};
use sanctorum_core::monitor::TestWeakening;
use sanctorum_hal::domain::CoreId;
use sanctorum_machine::{FaultPlan, MachineConfig};
use sanctorum_os::ops::{ImageKind, Op};
use sanctorum_os::system::PlatformKind;
use std::collections::BTreeMap;

/// Machine geometry for crash sweeps: 1 MiB of DRAM in 128 KiB regions
/// (eight regions, 32 pages each). Small regions keep the per-`clean` scrub
/// surface — one fault-point crossing per page — affordable, since the
/// sweep re-runs the whole trace once per crossing.
pub fn crash_machine_config() -> MachineConfig {
    MachineConfig {
        memory_size: 1024 * 1024,
        dram_region_size: 128 * 1024,
        pmp_entries: 16,
        device_id: 0xc4a5_4e55,
        ..MachineConfig::small()
    }
}

/// One surviving violation: where the sweep crashed (or which site it
/// faulted), and what broke.
#[derive(Debug, Clone)]
pub struct CrashCounterexample {
    /// Platform the violation was observed on.
    pub platform: &'static str,
    /// The replayable trace, with the crash embedded as an [`Op::Crashed`]
    /// step and truncated at the violating step (the minimal prefix).
    pub trace: Vec<TracedOp>,
    /// The fault site a persistent-fault run had armed, if this
    /// counterexample came from the fault pass rather than the crash pass.
    pub fault_site: Option<&'static str>,
    /// Zero-based step at which the violation fired.
    pub step: usize,
    /// The violation.
    pub violation: Violation,
}

impl std::fmt::Display for CrashCounterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "[{}] step {}: {}",
            self.platform, self.step, self.violation
        )?;
        if let Some(site) = self.fault_site {
            writeln!(f, "# persistent FailOp armed on {site}")?;
        }
        write!(f, "{}", format_trace(&self.trace))
    }
}

/// Aggregate result of sweeping one or more traces.
#[derive(Debug, Clone, Default)]
pub struct CrashSweepReport {
    /// Traces swept (per platform).
    pub traces: usize,
    /// Total fault-point crossings enumerated across all recording passes.
    pub crossings: usize,
    /// Crossings per fault site — the sweep's fault-point inventory.
    pub site_inventory: BTreeMap<&'static str, u64>,
    /// Full re-runs executed with an injected crash (one per crossing).
    pub crash_sweeps: usize,
    /// Full re-runs executed with a persistent per-site fault.
    pub fault_runs: usize,
    /// Every violation that survived recovery.
    pub violations: Vec<CrashCounterexample>,
}

impl CrashSweepReport {
    /// Whether every re-run recovered to a clean audit.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Sweeps one trace on one platform, accumulating into `report`. Set
/// `stop_on_first` to abort the sweep at the first violation (the
/// weakening-catch tests want the witness, not the census).
pub fn sweep_trace(
    platform: PlatformKind,
    config: &MachineConfig,
    weaken: Option<TestWeakening>,
    trace: &[TracedOp],
    stop_on_first: bool,
    report: &mut CrashSweepReport,
) {
    report.traces += 1;

    // Recording pass: enumerate the crash surface, step by step.
    let mut per_step: Vec<Vec<(&'static str, u64)>> = Vec::new();
    {
        let mut world = CheckedWorld::boot(platform, config.clone(), weaken);
        world.world.system.machine.fault_injector().record();
        for traced in trace {
            let _ = world.world.apply(CoreId::new(traced.hart), &traced.op);
            per_step.push(world.world.system.machine.fault_injector().take_log());
        }
        world.world.system.machine.fault_injector().disarm();
    }
    let mut sites: Vec<&'static str> = Vec::new();
    for log in &per_step {
        report.crossings += log.len();
        for (site, _) in log {
            *report.site_inventory.entry(site).or_default() += 1;
            if !sites.contains(site) {
                sites.push(site);
            }
        }
    }

    // Crash pass: one full re-run per crossing, crash embedded at it.
    for (step_index, log) in per_step.iter().enumerate() {
        for point in 1..=log.len() as u64 {
            report.crash_sweeps += 1;
            let mut crashed: Vec<TracedOp> = trace.to_vec();
            crashed[step_index] = TracedOp {
                hart: trace[step_index].hart,
                op: Op::Crashed {
                    point,
                    op: Box::new(trace[step_index].op.clone()),
                },
            };
            run_checked(platform, config, weaken, &crashed, None, report);
            if stop_on_first && !report.clean() {
                return;
            }
        }
    }

    // Fault pass: one full re-run per crossed site, with a persistent
    // transient fault armed on it for the whole trace.
    for site in sites {
        report.fault_runs += 1;
        run_faulted(platform, config, weaken, trace, site, report);
        if stop_on_first && !report.clean() {
            return;
        }
    }
}

/// Sweeps every trace on both platforms.
pub fn sweep_all(
    config: &MachineConfig,
    weaken: Option<TestWeakening>,
    traces: &[Vec<TracedOp>],
) -> CrashSweepReport {
    let mut report = CrashSweepReport::default();
    for platform in PlatformKind::ALL {
        for trace in traces {
            sweep_trace(platform, config, weaken, trace, false, &mut report);
        }
    }
    report
}

/// Runs one trace through the invariant kernel, recording the first
/// violation (with its minimal prefix) into `report`.
fn run_checked(
    platform: PlatformKind,
    config: &MachineConfig,
    weaken: Option<TestWeakening>,
    trace: &[TracedOp],
    fault_site: Option<&'static str>,
    report: &mut CrashSweepReport,
) {
    let mut world = CheckedWorld::boot(platform, config.clone(), weaken);
    for (step, traced) in trace.iter().enumerate() {
        if let Err(violation) = world.step(CoreId::new(traced.hart), &traced.op) {
            report.violations.push(CrashCounterexample {
                platform: platform.name(),
                trace: trace[..=step].to_vec(),
                fault_site,
                step,
                violation,
            });
            return;
        }
        // A crash+recover must leave the incremental audit cache coherent:
        // the unwind tore through the monitor mid-mutation, and recovery
        // bumped generations for everything it touched.
        if matches!(traced.op, Op::Crashed { .. }) {
            let incremental = world.world.system.monitor.audit();
            let full = world.world.system.monitor.audit_full();
            if incremental != full {
                report.violations.push(CrashCounterexample {
                    platform: platform.name(),
                    trace: trace[..=step].to_vec(),
                    fault_site,
                    step,
                    violation: Violation::CrashResidue {
                        platform: platform.name(),
                        detail: "incremental audit diverged from full rebuild after recovery"
                            .to_string(),
                    },
                });
                return;
            }
        }
    }
}

/// Runs one trace with a persistent `FailOp` armed on `site`, then disarms,
/// recovers, and audits the drained world.
fn run_faulted(
    platform: PlatformKind,
    config: &MachineConfig,
    weaken: Option<TestWeakening>,
    trace: &[TracedOp],
    site: &'static str,
    report: &mut CrashSweepReport,
) {
    let mut world = CheckedWorld::boot(platform, config.clone(), weaken);
    world
        .world
        .system
        .machine
        .fault_injector()
        .arm(FaultPlan::FailOp { site: Some(site), times: u64::MAX });
    for (step, traced) in trace.iter().enumerate() {
        if let Err(violation) = world.step(CoreId::new(traced.hart), &traced.op) {
            world.world.system.machine.fault_injector().disarm();
            report.violations.push(CrashCounterexample {
                platform: platform.name(),
                trace: trace[..=step].to_vec(),
                fault_site: Some(site),
                step,
                violation,
            });
            return;
        }
    }
    // The fault clears: recovery must drain the quarantine (retried scrubs
    // now succeed) and the world must audit clean.
    world.world.system.machine.fault_injector().disarm();
    world.world.system.monitor.recover();
    world.world.reconcile_after_recovery();
    if let Err(violation) = world.step(CoreId::new(0), &Op::Tick) {
        report.violations.push(CrashCounterexample {
            platform: platform.name(),
            trace: trace.to_vec(),
            fault_site: Some(site),
            step: trace.len(),
            violation,
        });
        return;
    }
    let remaining = world.world.system.monitor.quarantined_regions();
    if !remaining.is_empty() {
        report.violations.push(CrashCounterexample {
            platform: platform.name(),
            trace: trace.to_vec(),
            fault_site: Some(site),
            step: trace.len(),
            violation: Violation::CrashResidue {
                platform: platform.name(),
                detail: format!(
                    "{} regions still quarantined after fault cleared and recover()",
                    remaining.len()
                ),
            },
        });
    }
}

/// The depth-6 lifecycle trace set the acceptance sweep runs: short,
/// hand-written traces that together cross every fault point in the stack —
/// journaled create/delete/grant/clean paths, the batch entry, page scrubs,
/// backend PMP writes, and both mail copies. Ops use the abstract-selector
/// convention of [`sanctorum_os::ops`], so every line is executable
/// regardless of how earlier lines resolved.
pub fn lifecycle_traces() -> Vec<Vec<TracedOp>> {
    fn t(hart: u32, op: Op) -> TracedOp {
        TracedOp { hart, op }
    }
    vec![
        // Enclave lifecycle: create, run, delete, reclaim the pieces. The
        // first build takes region 6 in [`crash_machine_config`] geometry
        // (7 is the OS staging region, 0 the monitor's own), so the clean
        // and grant that follow reclaim exactly the dead enclave's — dirty —
        // region, which is what arms the dirty-reuse tripwire under the
        // `skip-quarantine` weakening.
        vec![
            t(0, Op::Build { kind: ImageKind::Hello, param: 0 }),
            t(0, Op::Run { slot: 0, budget: 600 }),
            t(1, Op::DeleteEnclave { slot: 0 }),
            t(0, Op::CleanRegion { region: 6 }),
            t(0, Op::GrantRegion { region: 6, owner: 0 }),
            t(1, Op::Tick),
        ],
        // Full teardown composite (delete + clean + grant inside one op),
        // with a second enclave live so residue is recognizable.
        vec![
            t(0, Op::Build { kind: ImageKind::Hello, param: 1 }),
            t(1, Op::Build { kind: ImageKind::Compute, param: 2 }),
            t(0, Op::Run { slot: 1, budget: 600 }),
            t(0, Op::Teardown { slot: 1 }),
            t(1, Op::Teardown { slot: 0 }),
            t(0, Op::Tick),
        ],
        // Region pipeline and the batched form of the same transitions.
        vec![
            t(0, Op::BlockRegion { region: 2 }),
            t(0, Op::CleanRegion { region: 2 }),
            t(0, Op::GrantRegion { region: 2, owner: 0 }),
            t(1, Op::Batch { region: 3 }),
            t(0, Op::Batch { region: 2 }),
            t(1, Op::Tick),
        ],
        // Mail paths: both copy directions, plus a queued burst.
        vec![
            t(0, Op::Build { kind: ImageKind::Hello, param: 3 }),
            t(0, Op::MailRoundTrip { slot: 0, payload: 0x5ca1e }),
            t(1, Op::MailQueue { slot: 0, burst: 2, payload: 0xbeef }),
            t(1, Op::MailRoundTrip { slot: 0, payload: 0xfeed }),
            t(0, Op::DeleteEnclave { slot: 0 }),
            t(0, Op::Tick),
        ],
    ]
}
