//! Model-checker statistics — the states/edges/depth/wall numbers
//! EXPERIMENTS.md records for the exhaustive bounded sweep, optionally
//! emitted as `BENCH_modelcheck.json` and gated against a committed
//! baseline.
//!
//! The run is the acceptance configuration (`ModelConfig::ci()`): the
//! lifecycle alphabet over the 2-enclave/2-hart/4-region small world to
//! depth 6, digest-pruned, full invariant kernel on every edge — plus the
//! grant-vs-delete TOCTOU window under every interleaving. A violation in
//! either exits 1 (with the replayable counterexample on stdout); a
//! machine-normalized states/sec regression beyond 2× against the baseline
//! exits 2.
//!
//! Usage:
//!
//! ```text
//! modelcheck_stats [--depth N] [--out PATH] [--baseline PATH]
//! ```
//!
//! Run with: `cargo run --release -p sanctorum-bench --bin modelcheck_stats`

use sanctorum_bench::{calibrate, extract_number};
use sanctorum_modelcheck::toctou::{check_window, grant_delete_window};
use sanctorum_modelcheck::{search, ModelConfig};

/// Throughput regression tolerance for the `--baseline` gate (matches the
/// other bench gates: CI machines are noisy, a 2× cliff is a regression).
const MAX_REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let mut config = ModelConfig::ci();
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--depth" => {
                config.max_depth =
                    args.next().and_then(|v| v.parse().ok()).expect("--depth N");
            }
            "--out" => out = Some(args.next().expect("--out PATH")),
            "--baseline" => baseline = Some(args.next().expect("--baseline PATH")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let calibration = calibrate();
    let outcome = search(&config);
    let states_per_second = outcome.states_per_second();

    println!("# exhaustive bounded sweep (lifecycle alphabet, small world)");
    println!("depth bound:      {}", config.max_depth);
    println!("states visited:   {}", outcome.states);
    println!("edges applied:    {}", outcome.edges);
    println!("depth reached:    {}", outcome.depth_reached);
    println!("complete:         {}", outcome.complete);
    println!("wall clock:       {:.2?}", outcome.wall);
    println!("states/sec:       {states_per_second:.1}");
    println!("calibration:      {calibration:.0} hashes/sec");

    let window = grant_delete_window();
    let window_outcomes = check_window(&ModelConfig::default(), &window);
    let window_violations: Vec<_> =
        window_outcomes.iter().filter_map(|o| o.violation.as_ref()).collect();
    println!("\n# grant-vs-delete TOCTOU window");
    println!("interleavings:    {}", window_outcomes.len());
    println!("violations:       {}", window_violations.len());

    let mut violations = window_violations.len();
    if let Some(counterexample) = &outcome.violation {
        violations += 1;
        println!(
            "\nVIOLATION ({}): {}\n{}",
            counterexample.kind, counterexample.violation, counterexample.to_text()
        );
    }
    for counterexample in &window_violations {
        println!(
            "\nWINDOW VIOLATION ({}): {}\n{}",
            counterexample.kind, counterexample.violation, counterexample.to_text()
        );
    }

    if let Some(path) = &out {
        let json = render_json(
            &config,
            outcome.states,
            outcome.edges,
            outcome.depth_reached,
            outcome.complete,
            outcome.wall.as_secs_f64(),
            states_per_second,
            calibration,
            window_outcomes.len(),
            violations,
        );
        std::fs::write(path, json).expect("write result JSON");
        println!("\nwrote {path}");
    }

    if violations > 0 || !outcome.complete {
        eprintln!("FAIL: the sweep must be complete and violation-free");
        std::process::exit(1);
    }

    if let Some(path) = &baseline {
        let text = std::fs::read_to_string(path).expect("read baseline JSON");
        let reference = extract_number(&text, "states_per_second")
            .expect("baseline JSON has a states_per_second field");
        let reference_calibration =
            extract_number(&text, "calibration_hashes_per_second").unwrap_or(calibration);
        let normalized_current = states_per_second / calibration;
        let normalized_reference = reference / reference_calibration;
        println!(
            "baseline {path}: {reference:.0} states/sec at {reference_calibration:.0} hashes/sec \
             (normalized gate: {normalized_current:.2e} vs floor {:.2e})",
            normalized_reference / MAX_REGRESSION_FACTOR
        );
        if normalized_current * MAX_REGRESSION_FACTOR < normalized_reference {
            eprintln!(
                "FAIL: throughput regressed more than {MAX_REGRESSION_FACTOR}x \
                 (machine-normalized {normalized_current:.2e} vs baseline {normalized_reference:.2e})"
            );
            std::process::exit(2);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    config: &ModelConfig,
    states: usize,
    edges: u64,
    depth_reached: usize,
    complete: bool,
    wall_clock_seconds: f64,
    states_per_second: f64,
    calibration: f64,
    window_interleavings: usize,
    violations: usize,
) -> String {
    format!(
        r#"{{
  "bench": "modelcheck_sweep",
  "config": {{
    "alphabet": "lifecycle",
    "depth": {depth},
    "max_live": {max_live},
    "harts": {harts},
    "regions": 4
  }},
  "states": {states},
  "edges": {edges},
  "depth_reached": {depth_reached},
  "complete": {complete},
  "wall_clock_seconds": {wall_clock_seconds:.3},
  "states_per_second": {states_per_second:.1},
  "calibration_hashes_per_second": {calibration:.1},
  "toctou_window_interleavings": {window_interleavings},
  "violations": {violations}
}}
"#,
        depth = config.max_depth,
        max_live = config.max_live,
        harts = config.harts,
    )
}
