//! HKDF (RFC 5869) over HMAC-SHA3-256.
//!
//! Used for two purposes in the reproduction:
//!
//! * secure-boot key derivation — the measurement root derives the SM's
//!   attestation seed from the device secret and the SM measurement
//!   (paper Sections IV-A and VI-C, and the referenced CSF'18 boot protocol);
//! * secure-channel key expansion — the verifier and enclave expand the
//!   X25519 shared secret into directional encryption/MAC keys (Fig. 7).

use crate::hmac::{hmac_sha3_256, TAG_LEN};

/// HKDF-Extract: condenses input keying material into a pseudorandom key.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; TAG_LEN] {
    hmac_sha3_256(salt, ikm)
}

/// HKDF-Expand: expands a pseudorandom key into `out.len()` bytes of output
/// keying material bound to `info`.
///
/// # Panics
///
/// Panics if more than `255 * 32` bytes of output are requested (RFC 5869
/// limit).
pub fn hkdf_expand(prk: &[u8; TAG_LEN], info: &[u8], out: &mut [u8]) {
    assert!(
        out.len() <= 255 * TAG_LEN,
        "hkdf output length limit exceeded"
    );
    let mut previous: Vec<u8> = Vec::new();
    let mut produced = 0;
    let mut counter = 1u8;
    while produced < out.len() {
        let mut data = Vec::with_capacity(previous.len() + info.len() + 1);
        data.extend_from_slice(&previous);
        data.extend_from_slice(info);
        data.push(counter);
        let block = hmac_sha3_256(prk, &data);
        let n = (out.len() - produced).min(TAG_LEN);
        out[produced..produced + n].copy_from_slice(&block[..n]);
        previous = block.to_vec();
        produced += n;
        counter = counter.wrapping_add(1);
    }
}

/// One-shot HKDF: extract followed by expand.
///
/// # Examples
///
/// ```
/// use sanctorum_crypto::kdf::hkdf;
/// let okm: [u8; 64] = hkdf(b"salt", b"input key material", b"sanctorum channel v1");
/// assert_ne!(okm[..32], okm[32..]);
/// ```
pub fn hkdf<const N: usize>(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; N] {
    let prk = hkdf_extract(salt, ikm);
    let mut out = [0u8; N];
    hkdf_expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a: [u8; 32] = hkdf(b"s", b"ikm", b"info");
        let b: [u8; 32] = hkdf(b"s", b"ikm", b"info");
        assert_eq!(a, b);
    }

    #[test]
    fn domain_separation_by_info() {
        let a: [u8; 32] = hkdf(b"s", b"ikm", b"info-a");
        let b: [u8; 32] = hkdf(b"s", b"ikm", b"info-b");
        assert_ne!(a, b);
    }

    #[test]
    fn salt_and_ikm_both_matter() {
        let base: [u8; 32] = hkdf(b"s", b"ikm", b"i");
        assert_ne!(base, hkdf::<32>(b"t", b"ikm", b"i"));
        assert_ne!(base, hkdf::<32>(b"s", b"ikm2", b"i"));
    }

    #[test]
    fn long_output_is_not_repeating() {
        let okm: [u8; 96] = hkdf(b"salt", b"ikm", b"info");
        assert_ne!(okm[..32], okm[32..64]);
        assert_ne!(okm[32..64], okm[64..]);
    }

    #[test]
    fn expand_prefix_property() {
        // Expanding to 32 and to 64 bytes must agree on the first 32.
        let prk = hkdf_extract(b"salt", b"ikm");
        let mut short = [0u8; 32];
        let mut long = [0u8; 64];
        hkdf_expand(&prk, b"info", &mut short);
        hkdf_expand(&prk, b"info", &mut long);
        assert_eq!(short, long[..32]);
    }

    #[test]
    #[should_panic(expected = "hkdf output length limit exceeded")]
    fn output_limit_enforced() {
        let prk = hkdf_extract(b"s", b"i");
        let mut out = vec![0u8; 255 * 32 + 1];
        hkdf_expand(&prk, b"", &mut out);
    }
}
