//! The trusted signing enclave (paper Section VI-C, Fig. 7 steps ③–⑤).
//!
//! The signing enclave is the only software besides the SM that ever sees the
//! SM's attestation signing key. It receives attestation requests from other
//! enclaves through SM mailboxes, retrieves the key with
//! `get_attestation_key` (the SM checks its measurement against the
//! hard-coded expected value), signs `(nonce, report_data, requester
//! measurement)` and mails a signed [`AttestationReply`] back.
//!
//! Two operating modes share one implementation:
//!
//! * **Serial** (the seed's shape): [`SigningEnclave::accept_request_from`]
//!   arms the request mailbox for one named requester,
//!   [`SigningEnclave::process_request`] handles exactly one request,
//!   fetching the attestation key from the SM every time.
//! * **Pipelined service** (the fabric workload):
//!   [`SigningEnclave::open_service`] arms the request mailbox in wildcard
//!   ([`ANY_SENDER`]) mode and caches the derived keypair once;
//!   [`SigningEnclave::drain`] then consumes every queued request in FIFO
//!   order, consulting a signature cache keyed by
//!   `(requester measurement, challenge class)` — so re-issued challenges
//!   cost a lookup, not an Ed25519 signature — and mails each reply to the
//!   requester identified by the SM's sender tag (no out-of-band requester
//!   id needed: the fabric's [`SenderIdentity::Enclave`] carries it).

use crate::client::AttestationRequest;
use sanctorum_core::api::SmApi;
use sanctorum_core::attestation::AttestationReport;
use sanctorum_core::error::{SmError, SmResult};
use sanctorum_core::mailbox::{SenderIdentity, ANY_SENDER};
use sanctorum_core::measurement::Measurement;
use sanctorum_core::monitor::SecurityMonitor;
use sanctorum_core::session::CallerSession;
use sanctorum_crypto::ed25519::{Keypair, Signature};
use sanctorum_hal::domain::EnclaveId;
use sanctorum_trust::Tainted;
use std::collections::BTreeMap;

/// Mailbox index the signing enclave uses to receive requests.
pub const REQUEST_MAILBOX: usize = 0;
/// Mailbox index requesters use to receive the signature.
pub const REPLY_MAILBOX: usize = 1;

/// The signed reply mailed back to a requester: the report the signing
/// enclave actually signed (the requester's *SM-recorded* measurement, never
/// a self-claimed one) plus the signature under the SM attestation key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReply {
    /// The report that was signed.
    pub report: AttestationReport,
    /// Signature over [`AttestationReport::to_signed_bytes`].
    pub signature: Signature,
}

/// Wire size of an encoded reply: 3 × 32 report bytes + 64 signature bytes.
pub const REPLY_LEN: usize = 96 + 64;

impl AttestationReply {
    /// Serializes the reply for transport through a mailbox.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(REPLY_LEN);
        out.extend_from_slice(self.report.enclave_measurement.as_bytes());
        out.extend_from_slice(&self.report.nonce);
        out.extend_from_slice(&self.report.report_data);
        out.extend_from_slice(&self.signature.to_bytes());
        out
    }

    /// Parses a reply; returns `None` if the length is wrong.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != REPLY_LEN {
            return None;
        }
        let mut measurement = [0u8; 32];
        let mut nonce = [0u8; 32];
        let mut report_data = [0u8; 32];
        let mut sig = [0u8; 64];
        measurement.copy_from_slice(&bytes[..32]);
        nonce.copy_from_slice(&bytes[32..64]);
        report_data.copy_from_slice(&bytes[64..96]);
        sig.copy_from_slice(&bytes[96..]);
        Some(Self {
            report: AttestationReport {
                enclave_measurement: Measurement(measurement),
                nonce,
                report_data,
            },
            signature: Signature::from_bytes(&sig),
        })
    }
}

/// Signature-cache key: the requester's measurement plus the challenge class
/// (nonce, report data). Identical triples produce identical reports, so the
/// deterministic Ed25519 signature can be replayed from cache.
type ChallengeClass = ([u8; 32], [u8; 32], [u8; 32]);

/// Host-side logic of the signing enclave (see the crate-level substitution
/// note).
#[derive(Debug)]
pub struct SigningEnclave {
    eid: EnclaveId,
    /// Keypair derived once by [`SigningEnclave::open_service`]; the serial
    /// path deliberately leaves this empty and re-derives per request (the
    /// pre-fabric baseline the service mode is measured against).
    cached_keypair: Option<Keypair>,
    /// Signature cache keyed by (measurement, challenge class).
    signature_cache: BTreeMap<ChallengeClass, Signature>,
    cache_hits: u64,
    signatures_produced: u64,
}

impl SigningEnclave {
    /// Binds the logic to the built signing enclave `eid`.
    pub fn new(eid: EnclaveId) -> Self {
        Self {
            eid,
            cached_keypair: None,
            signature_cache: BTreeMap::new(),
            cache_hits: 0,
            signatures_produced: 0,
        }
    }

    /// Returns the enclave id.
    pub fn eid(&self) -> EnclaveId {
        self.eid
    }

    /// `(cache hits, signatures actually produced)` since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.signatures_produced)
    }

    fn session(&self) -> CallerSession {
        CallerSession::enclave(self.eid)
    }

    /// Prepares to receive one attestation request from `requester`
    /// (serial mode).
    ///
    /// # Errors
    ///
    /// Propagates SM mailbox errors.
    pub fn accept_request_from(
        &self,
        sm: &SecurityMonitor,
        requester: EnclaveId,
    ) -> SmResult<()> {
        sm.accept_mail(self.session(), REQUEST_MAILBOX, requester.as_u64())
    }

    /// Opens the pipelined service: arms the request mailbox for **any**
    /// sender and derives the signing keypair once.
    ///
    /// # Errors
    ///
    /// Fails if the SM refuses the key (wrong signing-enclave measurement).
    pub fn open_service(&mut self, sm: &SecurityMonitor) -> SmResult<()> {
        self.open_service_with(sm, Keypair::from_seed)
    }

    /// Like [`SigningEnclave::open_service`], with the seed → keypair
    /// derivation supplied by the caller. The SM's measurement-gated key
    /// release still runs unconditionally; only the (pure, deterministic,
    /// milliseconds-scale) scalar arithmetic behind `Keypair::from_seed` is
    /// delegated — harnesses that boot hundreds of worlds sharing one
    /// device identity memoize it.
    ///
    /// # Errors
    ///
    /// Fails if the SM refuses the key (wrong signing-enclave measurement).
    pub fn open_service_with(
        &mut self,
        sm: &SecurityMonitor,
        derive: impl FnOnce([u8; 32]) -> Keypair,
    ) -> SmResult<()> {
        sm.accept_mail(self.session(), REQUEST_MAILBOX, ANY_SENDER)?;
        let seed = sm.get_attestation_key(self.session())?;
        self.cached_keypair = Some(derive(seed));
        Ok(())
    }

    /// Drains every queued attestation request, signing and replying in FIFO
    /// order. Returns the requester ids replied to. Malformed requests,
    /// requests from the untrusted OS, and requesters whose reply mailbox
    /// refuses delivery are dropped without stalling the queue.
    ///
    /// # Errors
    ///
    /// Fails only if the service was never opened ([`SmError::InvalidState`])
    /// or an SM call fails for a non-protocol reason.
    pub fn drain(&mut self, sm: &SecurityMonitor) -> SmResult<Vec<EnclaveId>> {
        if self.cached_keypair.is_none() {
            return Err(SmError::InvalidState {
                reason: "signing service not opened",
            });
        }
        let mut served = Vec::new();
        // Peek-then-get keeps the loop shape honest: the probe is what a real
        // in-enclave loop would use to poll without blocking.
        while sm.peek_mail(self.session(), REQUEST_MAILBOX).is_ok() {
            let (message, sender) = sm.get_mail(self.session(), REQUEST_MAILBOX)?;
            let Some(request) = AttestationRequest::decode(&message) else {
                continue;
            };
            // The measurement signed is the one the SM recorded for the
            // sender — the requester cannot lie about its own identity, and
            // the OS cannot impersonate an enclave.
            let SenderIdentity::Enclave { id, measurement } = sender else {
                continue;
            };
            let reply = self.sign_request(measurement, &request);
            // A requester that never armed its reply mailbox (or exhausted
            // its queue) forfeits this reply; the service moves on, and the
            // requester does not count as served.
            let encoded = reply.encode();
            if sm.send_mail(self.session(), id, Tainted::new(&encoded)).is_ok() {
                served.push(id);
            }
        }
        Ok(served)
    }

    /// Harness support: seeds the signature cache with a previously produced
    /// (and externally verified) signature for one challenge class.
    ///
    /// Ed25519 signatures are deterministic functions of (key, message), and
    /// the attestation key is fixed per device identity — so replaying a
    /// known-good signature is observationally identical to re-signing the
    /// same report. The adversarial explorer uses this to keep a
    /// multi-hundred-world sweep from re-paying the (millisecond-scale)
    /// signing cost for identical challenge classes in every world. Callers
    /// must only preload signatures produced under **this** monitor's
    /// attestation key.
    pub fn preload_signature(
        &mut self,
        requester_measurement: Measurement,
        nonce: [u8; 32],
        report_data: [u8; 32],
        signature: Signature,
    ) {
        self.signature_cache
            .insert((*requester_measurement.as_bytes(), nonce, report_data), signature);
    }

    fn sign_request(
        &mut self,
        requester_measurement: Measurement,
        request: &AttestationRequest,
    ) -> AttestationReply {
        let report = AttestationReport {
            enclave_measurement: requester_measurement,
            nonce: request.nonce,
            report_data: request.report_data,
        };
        let key: ChallengeClass = (
            *requester_measurement.as_bytes(),
            request.nonce,
            request.report_data,
        );
        let signature = if let Some(cached) = self.signature_cache.get(&key) {
            self.cache_hits += 1;
            *cached
        } else {
            let keypair = self.cached_keypair.as_ref().expect("service opened");
            let signature = keypair.sign(&report.to_signed_bytes());
            self.signature_cache.insert(key, signature);
            self.signatures_produced += 1;
            signature
        };
        AttestationReply { report, signature }
    }

    /// Processes one pending attestation request the serial way: fetches the
    /// request mail, retrieves the attestation key from the SM, signs the
    /// report, and mails the reply to the requester the SM's sender tag
    /// names.
    ///
    /// Returns the report it signed (useful for tests and traces).
    ///
    /// # Errors
    ///
    /// Fails if no request is waiting, the request is malformed, the SM
    /// refuses to release the key (wrong signing-enclave measurement), or the
    /// requester is not accepting the reply.
    pub fn process_request(
        &self,
        sm: &SecurityMonitor,
    ) -> SmResult<(AttestationReport, Signature)> {
        let (message, sender) = sm.get_mail(self.session(), REQUEST_MAILBOX)?;
        let request = AttestationRequest::decode(&message).ok_or(SmError::InvalidArgument {
            reason: "malformed attestation request",
        })?;
        let SenderIdentity::Enclave {
            id: requester,
            measurement: requester_measurement,
        } = sender
        else {
            return Err(SmError::Unauthorized);
        };

        let key_seed = sm.get_attestation_key(self.session())?;
        let keypair = Keypair::from_seed(key_seed);
        let report = AttestationReport {
            enclave_measurement: requester_measurement,
            nonce: request.nonce,
            report_data: request.report_data,
        };
        let signature = keypair.sign(&report.to_signed_bytes());

        let reply = AttestationReply { report: report.clone(), signature };
        let encoded = reply.encode();
        sm.send_mail(self.session(), requester, Tainted::new(&encoded))?;
        Ok((report, signature))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::AttestationRequest;

    #[test]
    fn request_encoding_round_trip() {
        let req = AttestationRequest {
            nonce: [7; 32],
            report_data: [9; 32],
        };
        let encoded = req.encode();
        let decoded = AttestationRequest::decode(&encoded).expect("round trip");
        assert_eq!(decoded.nonce, [7; 32]);
        assert_eq!(decoded.report_data, [9; 32]);
        assert!(AttestationRequest::decode(&encoded[..40]).is_none());
    }

    #[test]
    fn reply_encoding_round_trip() {
        let reply = AttestationReply {
            report: AttestationReport {
                enclave_measurement: Measurement([3; 32]),
                nonce: [4; 32],
                report_data: [5; 32],
            },
            signature: Signature::from_bytes(&[6; 64]),
        };
        let encoded = reply.encode();
        assert_eq!(encoded.len(), REPLY_LEN);
        assert_eq!(AttestationReply::decode(&encoded).expect("round trip"), reply);
        assert!(AttestationReply::decode(&encoded[..REPLY_LEN - 1]).is_none());
    }
}
