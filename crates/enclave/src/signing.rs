//! The trusted signing enclave (paper Section VI-C, Fig. 7 steps ③–⑤).
//!
//! The signing enclave is the only software besides the SM that ever sees the
//! SM's attestation signing key. It receives attestation requests from other
//! enclaves through SM mailboxes, retrieves the key with
//! `get_attestation_key` (the SM checks its measurement against the
//! hard-coded expected value), signs `(nonce, report_data, requester
//! measurement)` and mails the signature back.

use crate::client::AttestationRequest;
use sanctorum_core::api::SmApi;
use sanctorum_core::attestation::AttestationReport;
use sanctorum_core::error::{SmError, SmResult};
use sanctorum_core::mailbox::SenderIdentity;
use sanctorum_core::monitor::SecurityMonitor;
use sanctorum_core::session::CallerSession;
use sanctorum_crypto::ed25519::{Keypair, Signature};
use sanctorum_hal::domain::EnclaveId;

/// Mailbox index the signing enclave uses to receive requests.
pub const REQUEST_MAILBOX: usize = 0;
/// Mailbox index requesters use to receive the signature.
pub const REPLY_MAILBOX: usize = 1;

/// Host-side logic of the signing enclave (see the crate-level substitution
/// note).
#[derive(Debug)]
pub struct SigningEnclave {
    eid: EnclaveId,
}

impl SigningEnclave {
    /// Binds the logic to the built signing enclave `eid`.
    pub fn new(eid: EnclaveId) -> Self {
        Self { eid }
    }

    /// Returns the enclave id.
    pub fn eid(&self) -> EnclaveId {
        self.eid
    }

    fn session(&self) -> CallerSession {
        CallerSession::enclave(self.eid)
    }

    /// Prepares to receive an attestation request from `requester`.
    ///
    /// # Errors
    ///
    /// Propagates SM mailbox errors.
    pub fn accept_request_from(
        &self,
        sm: &SecurityMonitor,
        requester: EnclaveId,
    ) -> SmResult<()> {
        sm.accept_mail(self.session(), REQUEST_MAILBOX, requester.as_u64())
    }

    /// Processes one pending attestation request: fetches the request mail,
    /// retrieves the attestation key, signs the report, and mails the
    /// signature back to the requester.
    ///
    /// Returns the report it signed (useful for tests and traces).
    ///
    /// # Errors
    ///
    /// Fails if no request is waiting, the request is malformed, the SM
    /// refuses to release the key (wrong signing-enclave measurement), or the
    /// requester is not accepting the reply.
    pub fn process_request(
        &self,
        sm: &SecurityMonitor,
        requester: EnclaveId,
    ) -> SmResult<(AttestationReport, Signature)> {
        let (message, sender) = sm.get_mail(self.session(), REQUEST_MAILBOX)?;
        let request = AttestationRequest::decode(&message).ok_or(SmError::InvalidArgument {
            reason: "malformed attestation request",
        })?;
        // The measurement signed is the one the SM recorded for the sender —
        // the requester cannot lie about its own identity.
        let requester_measurement = match sender {
            SenderIdentity::Enclave(m) => m,
            SenderIdentity::Untrusted => {
                return Err(SmError::Unauthorized);
            }
        };

        let key_seed = sm.get_attestation_key(self.session())?;
        let keypair = Keypair::from_seed(key_seed);
        let report = AttestationReport {
            enclave_measurement: requester_measurement,
            nonce: request.nonce,
            report_data: request.report_data,
        };
        let signature = keypair.sign(&report.to_signed_bytes());

        sm.send_mail(self.session(), requester, &signature.to_bytes())?;
        Ok((report, signature))
    }
}

#[cfg(test)]
mod tests {
    use crate::client::AttestationRequest;

    #[test]
    fn request_encoding_round_trip() {
        let req = AttestationRequest {
            nonce: [7; 32],
            report_data: [9; 32],
        };
        let encoded = req.encode();
        let decoded = AttestationRequest::decode(&encoded).expect("round trip");
        assert_eq!(decoded.nonce, [7; 32]);
        assert_eq!(decoded.report_data, [9; 32]);
        assert!(AttestationRequest::decode(&encoded[..40]).is_none());
    }
}
