//! Epoch-based read-side for the monitor's read-mostly lookup tables.
//!
//! The enclave and thread tables are read on every call (id → handle
//! resolution, audit walks, the delete-path mail purge) but mutated only by
//! lifecycle calls. A plain `RwLock` makes those readers *block* whenever a
//! writer holds the table — on the mutation-heavy scaling workload the
//! lifecycle churn turns every lookup into a potential stall. An
//! [`EpochCell`] removes the read-side blocking entirely, RCU-style:
//!
//! * **Readers** ([`EpochCell::load`]) grab the current snapshot `Arc` and
//!   never wait on a writer. The loop below is wait-free in practice: a
//!   reader only retries when a publish moved the current-slot pointer
//!   between its version load and its slot acquisition, and publishes are
//!   rare lifecycle events.
//! * **Writers** ([`EpochCell::publish`]) build the next snapshot under the
//!   existing ranked table lock (which already serializes writers), install
//!   it, and push the previous snapshot onto a retire list.
//! * **Retirement** ([`EpochCell::quiesce`]) drops retired snapshots whose
//!   reference count shows no reader still holds them. The explorer's
//!   quiescent barriers call this through [`crate::monitor::SecurityMonitor::audit`],
//!   so retired epochs drain at exactly the points the invariant kernel
//!   already treats as quiescent.
//!
//! The cell is plain safe Rust over two `parking_lot::RwLock` slots and an
//! atomic version word — no hand-rolled pointer reclamation. The version's
//! low bit selects the slot holding the *current* snapshot; a publish writes
//! the other slot and flips the bit. A reader whose slot read is beaten by a
//! publish fails the `try_read` (the writer is rewriting what the reader
//! thought was current) and re-resolves; it never blocks.
//!
//! Each cell carries a [`LockRank`] so the whole epoch domain participates
//! in the lock-order discipline of [`crate::lockorder`]: `load`, `publish`
//! and `quiesce` all record the rank on the thread's shadow stack for their
//! duration, so e.g. publishing a table snapshot while holding a lock above
//! the cell's rank panics in debug builds exactly like a misordered mutex.

use crate::lockorder::{hold, LockRank};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A double-buffered snapshot cell with non-blocking readers (see the
/// module docs for the protocol).
#[derive(Debug)]
pub struct EpochCell<T> {
    /// This epoch domain's position in the monitor's lock order.
    rank: LockRank,
    /// Publish counter; bit 0 selects the slot holding the current snapshot.
    version: AtomicU64,
    /// The two snapshot slots. The slot named by `version & 1` is current;
    /// a publish rewrites the *other* slot before flipping the version.
    slots: [RwLock<Arc<T>>; 2],
    /// Snapshots replaced by a publish but possibly still referenced by a
    /// reader; drained at quiescence.
    retired: Mutex<Vec<Arc<T>>>,
}

impl<T> EpochCell<T> {
    /// Creates a cell at `rank` holding `initial` as the current snapshot.
    pub fn new(rank: LockRank, initial: T) -> Self {
        let initial = Arc::new(initial);
        Self {
            rank,
            version: AtomicU64::new(0),
            slots: [RwLock::new(Arc::clone(&initial)), RwLock::new(initial)],
            retired: Mutex::new(Vec::new()),
        }
    }

    /// This epoch domain's position in the lock hierarchy.
    pub const fn rank(&self) -> LockRank {
        self.rank
    }

    /// Returns the current snapshot without ever blocking on a writer.
    ///
    /// The `try_read` on the current slot can only fail while a publish is
    /// flipping the version underneath us — the slot we resolved is being
    /// rewritten as the *next* snapshot — in which case re-reading the
    /// version names the freshly published slot and succeeds.
    pub fn load(&self) -> Arc<T> {
        let _rank = hold(self.rank);
        loop {
            let version = self.version.load(Ordering::Acquire);
            let slot = (version & 1) as usize;
            if let Some(guard) = self.slots[slot].try_read() {
                return Arc::clone(&guard);
            }
            std::hint::spin_loop();
        }
    }

    /// Installs `next` as the current snapshot and retires the previous one.
    ///
    /// Callers must already be serialized against each other — the monitor
    /// publishes while still holding the write lock of the table the cell
    /// mirrors, which is what makes the two-slot protocol sufficient. The
    /// write below waits only for in-flight readers of the stale slot (each
    /// holds it just long enough to clone an `Arc`), never for other
    /// writers.
    pub fn publish(&self, next: Arc<T>) {
        let _rank = hold(self.rank);
        let version = self.version.load(Ordering::Acquire);
        let stale = ((version & 1) ^ 1) as usize;
        let previous = {
            let mut slot = self.slots[stale].write();
            std::mem::replace(&mut *slot, next)
        };
        self.version.store(version.wrapping_add(1), Ordering::Release);
        self.retired.lock().push(previous);
    }

    /// Drops every retired snapshot no reader still references. Called at
    /// quiescent points; snapshots still held by a straggling reader simply
    /// survive to the next quiescence. Returns how many were reclaimed.
    ///
    /// A snapshot is reader-held only when its `strong_count` exceeds the
    /// references the cell itself owns: duplicate entries on the retire list
    /// and any copy still sitting in a slot (the initial snapshot seeds both
    /// slots, so its first retirement leaves a slot copy behind).
    pub fn quiesce(&self) -> usize {
        let _rank = hold(self.rank);
        let mut retired = self.retired.lock();
        let before = retired.len();
        let slot_ptrs: Vec<*const T> = self
            .slots
            .iter()
            .map(|slot| Arc::as_ptr(&slot.read()))
            .collect();
        let mut owned: BTreeMap<*const T, usize> = BTreeMap::new();
        for snapshot in retired.iter() {
            *owned.entry(Arc::as_ptr(snapshot)).or_default() += 1;
        }
        retired.retain(|snapshot| {
            let ptr = Arc::as_ptr(snapshot);
            let ours = owned[&ptr] + slot_ptrs.iter().filter(|p| **p == ptr).count();
            Arc::strong_count(snapshot) > ours
        });
        before - retired.len()
    }

    /// Number of retired snapshots awaiting reclamation (diagnostic).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(initial: u64) -> EpochCell<u64> {
        EpochCell::new(LockRank(34), initial)
    }

    #[test]
    fn load_returns_the_latest_published_snapshot() {
        let cell = cell(1);
        assert_eq!(*cell.load(), 1);
        cell.publish(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        cell.publish(Arc::new(3));
        cell.publish(Arc::new(4));
        assert_eq!(*cell.load(), 4);
    }

    #[test]
    fn retired_snapshots_drain_at_quiescence() {
        let cell = cell(1);
        cell.publish(Arc::new(2));
        cell.publish(Arc::new(3));
        assert_eq!(cell.retired_len(), 2);
        // No reader holds the retired snapshots: both reclaim.
        assert_eq!(cell.quiesce(), 2);
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn a_held_snapshot_survives_quiescence_until_released() {
        let cell = cell(1);
        let held = cell.load();
        cell.publish(Arc::new(2));
        // The reader still references epoch 1: it must not be reclaimed.
        assert_eq!(cell.quiesce(), 0);
        assert_eq!(cell.retired_len(), 1);
        assert_eq!(*held, 1, "reader's snapshot is immutable despite publish");
        drop(held);
        assert_eq!(cell.quiesce(), 1);
    }

    #[test]
    fn readers_never_block_on_a_concurrent_publisher() {
        use std::sync::atomic::AtomicBool;
        let cell = Arc::new(cell(0));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let seen = *cell.load();
                    assert!(seen >= last, "snapshots must be monotone");
                    last = seen;
                }
                last
            }));
        }
        for value in 1..=1000u64 {
            cell.publish(Arc::new(value));
            if value.is_multiple_of(64) {
                cell.quiesce();
            }
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().expect("reader thread") <= 1000);
        }
        // Everything retires once the readers are gone.
        cell.quiesce();
        assert_eq!(cell.retired_len(), 0);
        assert_eq!(*cell.load(), 1000);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn epoch_operations_respect_the_lock_hierarchy() {
        use crate::lockorder::OrderedMutex;
        let high = OrderedMutex::new(LockRank(90), ());
        let cell = cell(1);
        let _guard = high.lock();
        // Loading a rank-34 epoch while holding rank 90 is a violation,
        // exactly as a misordered mutex acquisition would be.
        let _ = cell.load();
    }
}
