//! Explorer statistics — the coverage numbers EXPERIMENTS.md records for the
//! adversarial explorer (seeds × steps × both backends, op mix, violations,
//! declared divergences, wall-clock).
//!
//! Run with: `cargo run --release -p sanctorum-bench --bin explorer_stats`
//! Optionally pass the number of seeds (default 100).

use sanctorum_explorer::{Explorer, ExplorerConfig};
use std::time::Instant;

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let config = ExplorerConfig::default();
    let steps = config.steps;
    let explorer = Explorer::new(config);

    let start = Instant::now();
    let stats = explorer.sweep(0..seeds);
    let elapsed = start.elapsed();

    println!("# explorer sweep");
    println!("seeds:                 {}", stats.seeds);
    println!("steps per seed:        {steps}");
    println!("backends per step:     2 (sanctum + keystone, lockstep)");
    println!("total ops applied:     {} per backend", stats.total_steps);
    println!("declared divergences:  {}", stats.declared_divergences);
    println!("violations:            {}", stats.failures.len());
    println!("wall clock:            {:.2?}", elapsed);
    println!("\n## op mix");
    for (label, count) in &stats.op_counts {
        println!("{label:>16}: {count}");
    }
    for failure in &stats.failures {
        println!("\n{failure}");
    }
    if !stats.failures.is_empty() {
        std::process::exit(1);
    }
}
