//! Controlled-schedule exploration of grant-vs-delete-class TOCTOU
//! windows.
//!
//! The bounded search in [`crate::search`] walks one serialized op stream —
//! it can reach every *state*, but it executes every transition from a
//! single host thread. Real TOCTOU bugs live in the other dimension: two
//! harts inside a short critical window, where the interesting question is
//! not "which states exist" but "does every *ordering* of these few calls
//! preserve the invariants". This module drives that window with the
//! loom-style [`Schedule`]/[`run_scheduled`] machinery from
//! `sanctorum_os::concurrent`: per-hart op scripts execute on real host
//! threads, one op at a time, under an explicit interleaving — and
//! [`check_window`] enumerates **all** interleavings of the window, so the
//! historical grant-while-delete race class is covered deterministically
//! instead of by soak luck.
//!
//! Because each op runs alone (the turn token serializes at op
//! granularity), every schedule is also a serialized [`TracedOp`] trace:
//! a violation under some interleaving is reported as an ordinary
//! replayable [`Counterexample`].

use crate::search::Counterexample;
use crate::ModelConfig;
use sanctorum_explorer::trace::TracedOp;
use sanctorum_explorer::CheckedWorld;
use sanctorum_hal::domain::CoreId;
use sanctorum_os::concurrent::{run_scheduled, Schedule};
use sanctorum_os::ops::{ImageKind, Op};
use std::sync::Mutex;

/// A two-hart critical window: shared setup ops, then one short op script
/// per hart whose interleavings are the space under test.
#[derive(Debug, Clone)]
pub struct Window {
    /// Ops establishing the pre-state, applied serially on hart 0.
    pub setup: Vec<Op>,
    /// Per-hart scripts; worker `w` issues `scripts[w]` from hart `w`.
    pub scripts: Vec<Vec<Op>>,
}

impl Window {
    /// Every interleaving of the window's scripts.
    pub fn schedules(&self) -> Vec<Schedule> {
        let counts: Vec<usize> = self.scripts.iter().map(Vec::len).collect();
        Schedule::interleavings(&counts)
    }
}

/// The canonical grant-vs-delete window, the race class PR 5's sharded
/// locking had to defend: hart 0 grants an *available* region to a live
/// enclave while hart 1 deletes that same enclave, recycles its backing
/// region and re-grants the contested region to the OS. Depending on the
/// interleaving the grant lands on a live enclave (and the delete must
/// then reclaim the region) or on a dying/dead one (and must be refused) —
/// either way no region may end up owned by a deleted enclave and no dirty
/// region may reach a new owner unscrubbed.
pub fn grant_delete_window() -> Window {
    Window {
        setup: vec![
            // One live enclave (slot 0) and one region made Available for
            // the contested grant. Selector note: after the build the free
            // pool is shorter by one; region index 1 is still OS-owned in
            // the canonical small world (the pool is [1, 2] after staging
            // and the build takes from the back).
            Op::Build { kind: ImageKind::Hello, param: 0 },
            Op::BlockRegion { region: 1 },
            Op::CleanRegion { region: 1 },
        ],
        scripts: vec![
            // Hart 0: the grant side. Owner selector 1 resolves to live
            // slot 0 as an *enclave* grant (1 % live == 0, 1 % (live+1) != 0).
            vec![Op::GrantRegion { region: 1, owner: 1 }],
            // Hart 1: the delete side — delete the enclave, clean its
            // (now blocked) backing region, re-grant the contested region
            // to the OS.
            vec![
                Op::DeleteEnclave { slot: 0 },
                Op::CleanRegion { region: 2 },
                Op::GrantRegion { region: 1, owner: 0 },
            ],
        ],
    }
}

/// What one schedule of a window produced.
#[derive(Debug, Clone)]
pub struct WindowOutcome {
    /// The interleaving that ran.
    pub schedule: Schedule,
    /// Per-global-step `(worker, OpOutcome::status)` stream, in schedule
    /// order — the deterministic observable of the interleaving. The worker
    /// tag matters: two interleavings can produce the same bare status
    /// sequence while attributing the failures to different harts.
    pub statuses: Vec<(usize, u64)>,
    /// The violation this interleaving reached, if any, as a serialized
    /// replayable trace (setup + the interleaved prefix).
    pub violation: Option<Counterexample>,
}

/// Runs `window` under **every** interleaving of its scripts, each on real
/// host threads serialized by the schedule, with the full invariant kernel
/// checking every step. Outcomes are returned in schedule order
/// (lexicographic), and the whole function is a deterministic function of
/// `(config, window)`.
///
/// # Panics
///
/// Panics if a setup op is skipped or violates — the window's pre-state
/// must be unambiguous.
pub fn check_window(config: &ModelConfig, window: &Window) -> Vec<WindowOutcome> {
    window
        .schedules()
        .into_iter()
        .map(|schedule| run_window_schedule(config, window, schedule))
        .collect()
}

/// Runs one schedule of the window.
fn run_window_schedule(
    config: &ModelConfig,
    window: &Window,
    schedule: Schedule,
) -> WindowOutcome {
    let mut world = CheckedWorld::boot(config.platform, config.machine.clone(), config.weaken);
    let mut trace: Vec<TracedOp> = Vec::new();
    for op in &window.setup {
        let outcome = world
            .step(CoreId::new(0), op)
            .unwrap_or_else(|violation| panic!("window setup violated: {violation}"));
        assert_ne!(
            outcome.status,
            sanctorum_os::ops::OpOutcome::SKIPPED,
            "window setup op was skipped: {op:?}"
        );
        trace.push(TracedOp { hart: 0, op: op.clone() });
    }

    // Shared channel between the scheduled workers: the world under test,
    // the serialized trace so far, the status stream, and the first
    // violation. The turn token already serializes the workers; the mutex
    // only carries the shared references across threads.
    struct Shared {
        world: CheckedWorld,
        trace: Vec<TracedOp>,
        statuses: Vec<(usize, u64)>,
        violation: Option<Counterexample>,
    }
    let shared = Mutex::new(Shared {
        world,
        trace,
        statuses: Vec::new(),
        violation: None,
    });

    let result = run_scheduled(
        window.scripts.clone(),
        &schedule,
        |worker, script, local_step| {
            let op = script[local_step].clone();
            let hart = worker as u32;
            let mut shared = shared.lock().unwrap();
            let shared = &mut *shared;
            shared.trace.push(TracedOp { hart, op: op.clone() });
            match shared.world.step(CoreId::new(hart), &op) {
                Ok(outcome) => {
                    shared.statuses.push((worker, outcome.status));
                    Ok(())
                }
                Err(violation) => {
                    shared.violation = Some(Counterexample {
                        trace: shared.trace.clone(),
                        kind: violation.kind(),
                        violation: violation.to_string(),
                    });
                    Err(violation.to_string())
                }
            }
        },
    );
    let shared = shared.into_inner().unwrap();
    if result.is_err() {
        assert!(shared.violation.is_some(), "scheduled run failed without a violation");
    }
    WindowOutcome {
        schedule,
        statuses: shared.statuses,
        violation: shared.violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_delete_window_enumerates_all_interleavings_clean() {
        let config = ModelConfig::default();
        let window = grant_delete_window();
        let outcomes = check_window(&config, &window);
        assert_eq!(outcomes.len(), 4, "C(4,1) interleavings of a 1-vs-3 window");
        for outcome in &outcomes {
            assert!(
                outcome.violation.is_none(),
                "schedule {} violated: {:?}",
                outcome.schedule.label(),
                outcome.violation
            );
            assert_eq!(outcome.statuses.len(), 4, "every step ran");
        }
        // The interleaving must be observable: grant-before-delete and
        // grant-after-delete produce different status streams.
        let distinct: std::collections::BTreeSet<&[(usize, u64)]> =
            outcomes.iter().map(|o| o.statuses.as_slice()).collect();
        assert!(
            distinct.len() >= 2,
            "all interleavings produced identical outcomes: {distinct:?}"
        );
    }

    #[test]
    fn window_checks_are_deterministic() {
        let config = ModelConfig::default();
        let window = grant_delete_window();
        let first: Vec<Vec<(usize, u64)>> =
            check_window(&config, &window).into_iter().map(|o| o.statuses).collect();
        let second: Vec<Vec<(usize, u64)>> =
            check_window(&config, &window).into_iter().map(|o| o.statuses).collect();
        assert_eq!(first, second);
    }
}
