//! Seeded property tests for the mailbox fabric state machine.
//!
//! A [`Runner`]-driven harness interleaves arbitrary `accept` / `send` /
//! `get` / `peek` traffic across several enclaves and the OS — including
//! unsolicited-sender DoS attempts, wildcard service mailboxes, and enclave
//! teardown mid-conversation — and asserts after **every** op that:
//!
//! * the fabric quota ledger conserves: outstanding counts equal, sender by
//!   sender, the messages actually queued across all live enclaves, and no
//!   sender ever exceeds `MAIL_SENDER_QUOTA`;
//! * the incremental audit still agrees with the from-scratch rebuild
//!   (`audit() == audit_full()`) — the fabric's generation counters feed the
//!   same cache the hot-path overhaul introduced, so every mutator must
//!   bump them;
//! * `peek` is non-destructive and always describes exactly the message the
//!   next `get` delivers.

use proptest::prelude::*;
use sanctorum_core::api::SmApi;
use sanctorum_core::mailbox::{ANY_SENDER, MAIL_SENDER_QUOTA};
use sanctorum_core::monitor::AuditSnapshot;
use sanctorum_trust::Tainted;
use sanctorum_core::session::CallerSession;
use sanctorum_enclave::image::EnclaveImage;
use sanctorum_hal::domain::EnclaveId;
use sanctorum_os::os::{BuiltEnclave, Os};
use sanctorum_os::system::{PlatformKind, System};

/// One abstract fabric op; selectors resolve modulo the live population, so
/// any generated sequence is executable (the same convention the explorer's
/// trace ops use).
#[derive(Debug, Clone, Copy)]
enum FabricOp {
    /// `slot` arms mailbox `mb` for `sender_sel` (wildcard every 5th value).
    Accept { slot: u64, mb: u64, sender_sel: u64 },
    /// `from_sel` (0 = the OS) mails `to` a message of `len` bytes.
    Send { from_sel: u64, to: u64, len: u64 },
    /// `slot` drains one message from mailbox `mb`.
    Get { slot: u64, mb: u64 },
    /// `slot` probes mailbox `mb` without consuming.
    Peek { slot: u64, mb: u64 },
    /// Tear `slot` down mid-conversation and rebuild it (undelivered mail to
    /// *and from* it must be purged and refunded).
    Churn { slot: u64 },
}

fn op_from_words(w: &[u64; 4]) -> FabricOp {
    match w[0] % 10 {
        0 | 1 => FabricOp::Accept { slot: w[1], mb: w[2], sender_sel: w[3] },
        2..=4 => FabricOp::Send { from_sel: w[1], to: w[2], len: w[3] },
        5 | 6 => FabricOp::Get { slot: w[1], mb: w[2] },
        7 | 8 => FabricOp::Peek { slot: w[1], mb: w[2] },
        _ => FabricOp::Churn { slot: w[1] },
    }
}

struct Harness {
    system: System,
    os: Os,
    enclaves: Vec<BuiltEnclave>,
}

impl Harness {
    fn boot() -> Self {
        let system = System::boot_small(PlatformKind::Sanctum);
        let mut os = Os::new(&system);
        let enclaves = (0..3)
            .map(|i| os.build_enclave(&EnclaveImage::hello(0x100 + i), 1).unwrap())
            .collect();
        Self { system, os, enclaves }
    }

    fn eid(&self, slot: u64) -> EnclaveId {
        self.enclaves[(slot % self.enclaves.len() as u64) as usize].eid
    }

    fn apply(&mut self, op: FabricOp) -> Result<(), String> {
        let sm = &self.system.monitor;
        match op {
            FabricOp::Accept { slot, mb, sender_sel } => {
                let session = CallerSession::enclave(self.eid(slot));
                // Cycle through: a live enclave, the OS, a nonsense id, and
                // the wildcard — unsolicited-sender pressure included.
                let sender = match sender_sel % 5 {
                    0 => ANY_SENDER,
                    1 => 0,
                    2 => 0xdead_beef,
                    _ => self.eid(sender_sel).as_u64(),
                };
                let _ = sm.accept_mail(session, (mb % 5) as usize, sender);
            }
            FabricOp::Send { from_sel, to, len } => {
                let session = if from_sel % 4 == 0 {
                    CallerSession::os()
                } else {
                    CallerSession::enclave(self.eid(from_sel))
                };
                let message = vec![0x5au8; 1 + (len % 96) as usize];
                // Refusals (not accepted, full queue, quota) are legitimate;
                // conservation must hold either way.
                let _ = sm.send_mail(session, self.eid(to), Tainted::new(&message));
            }
            FabricOp::Get { slot, mb } => {
                let session = CallerSession::enclave(self.eid(slot));
                let _ = sm.get_mail(session, (mb % 5) as usize);
            }
            FabricOp::Peek { slot, mb } => {
                let session = CallerSession::enclave(self.eid(slot));
                let mailbox = (mb % 5) as usize;
                // A successful peek must describe exactly what get delivers,
                // and peeking must not consume.
                if let Ok((len_a, sender_a)) = sm.peek_mail(session, mailbox) {
                    let (len_b, sender_b) = sm
                        .peek_mail(session, mailbox)
                        .map_err(|e| format!("second peek failed: {e}"))?;
                    if (len_a, sender_a) != (len_b, sender_b) {
                        return Err("peek consumed or reordered the queue".into());
                    }
                    let (message, identity) = sm
                        .get_mail(session, mailbox)
                        .map_err(|e| format!("get after successful peek failed: {e}"))?;
                    if message.len() != len_a || identity.sender_id() != sender_a {
                        return Err(format!(
                            "peek promised ({len_a}, {sender_a:#x}) but get delivered \
                             ({}, {:#x})",
                            message.len(),
                            identity.sender_id()
                        ));
                    }
                }
            }
            FabricOp::Churn { slot } => {
                let index = (slot % self.enclaves.len() as u64) as usize;
                let dying = self.enclaves[index].clone();
                self.os
                    .teardown_enclave(&dying)
                    .map_err(|e| format!("teardown failed: {e}"))?;
                let rebuilt = self
                    .os
                    .build_enclave(&EnclaveImage::hello(0x200 + slot % 7), 1)
                    .map_err(|e| format!("rebuild failed: {e}"))?;
                self.enclaves[index] = rebuilt;
            }
        }
        self.check()
    }

    /// The conservation + audit-equivalence kernel, run after every op.
    fn check(&self) -> Result<(), String> {
        let audit = self.system.monitor.audit();
        let full = self.system.monitor.audit_full();
        if audit != full {
            return Err(format!(
                "incremental audit diverged from full rebuild after a fabric op:\n\
                 incremental: {audit:?}\nfull: {full:?}"
            ));
        }
        conservation(&audit)
    }
}

/// Ledger ≡ queued messages, and quota respected — literally the same
/// definition the explorer's invariant kernel enforces mid-trace.
fn conservation(audit: &AuditSnapshot) -> Result<(), String> {
    sanctorum_explorer::invariants::mail_quota_conservation(audit)
}

#[test]
fn arbitrary_fabric_interleavings_conserve_quota_and_audit() {
    // Word-quadruple sequences, mapped to fabric ops; one booted system per
    // case so failures shrink to short self-contained traces.
    let strategy = proptest::collection::vec(0u64.., 4..120);
    let result = Runner::new(0xfab1c).cases(24).run(&strategy, |words| {
        let mut harness = Harness::boot();
        for chunk in words.chunks_exact(4) {
            let op = op_from_words(&[chunk[0], chunk[1], chunk[2], chunk[3]]);
            harness.apply(op).map_err(|e| format!("{op:?}: {e}"))?;
        }
        Ok(())
    });
    if let Err(failure) = result {
        panic!("fabric property violated:\n{failure}");
    }
}

#[test]
fn quota_exhaustion_and_refund_round_trip() {
    // Directed version of the DoS scenario: the OS fills its fabric quota
    // against one wildcard service enclave spread over several mailboxes,
    // is cut off at exactly MAIL_SENDER_QUOTA, and is fully refunded once
    // the service drains.
    let harness = Harness::boot();
    let sm = &harness.system.monitor;
    let victim = harness.enclaves[0].eid;
    let session = CallerSession::enclave(victim);
    for mb in 0..sanctorum_core::enclave::MAILBOXES_PER_ENCLAVE {
        sm.accept_mail(session, mb, ANY_SENDER).unwrap();
    }
    let mut sent = 0;
    while sm.send_mail(CallerSession::os(), victim, b"fill".into()).is_ok() {
        sent += 1;
        assert!(sent <= MAIL_SENDER_QUOTA, "quota never enforced");
    }
    assert_eq!(sent, MAIL_SENDER_QUOTA, "full quota must be reachable");
    harness.check().unwrap();
    let mut drained = 0;
    for mb in 0..sanctorum_core::enclave::MAILBOXES_PER_ENCLAVE {
        while sm.get_mail(session, mb).is_ok() {
            drained += 1;
        }
    }
    assert_eq!(drained, sent);
    harness.check().unwrap();
    sm.send_mail(CallerSession::os(), victim, b"refunded".into()).unwrap();
    let (message, identity) = sm.get_mail(session, 0).unwrap();
    assert_eq!(message, b"refunded");
    assert_eq!(identity.sender_id(), 0);
    harness.check().unwrap();
}

#[test]
fn teardown_purges_messages_sent_by_the_dead_enclave() {
    // A dead sender's undelivered mail must not survive into the next life
    // of its recycled enclave id.
    let mut harness = Harness::boot();
    let sender = harness.enclaves[1].clone();
    let recipient = harness.enclaves[0].eid;
    let recipient_session = CallerSession::enclave(recipient);
    {
        let sm = &harness.system.monitor;
        sm.accept_mail(recipient_session, 0, sender.eid.as_u64()).unwrap();
        sm.send_mail(CallerSession::enclave(sender.eid), recipient, b"ghost".into())
            .unwrap();
        assert!(sm.peek_mail(recipient_session, 0).is_ok());
    }
    harness.os.teardown_enclave(&sender).unwrap();
    let sm = &harness.system.monitor;
    // The queued message died with its sender; the queue is empty again and
    // the ledger agrees.
    assert!(sm.peek_mail(recipient_session, 0).is_err());
    harness.check().unwrap();
}
