//! A ChaCha20-based deterministic random-bit generator.
//!
//! The SM requires a trusted entropy source (paper Section IV-B4). The
//! simulated platform seeds this DRBG from the machine's fabricated TRNG; the
//! DRBG then serves key generation for attestation, mailbox nonces and the
//! enclaves' own randomness. Re-keying after every request provides forward
//! secrecy (fast-key-erasure construction).

use crate::chacha::ChaCha20;

/// A deterministic random-bit generator built on ChaCha20 with fast key
/// erasure.
///
/// # Examples
///
/// ```
/// use sanctorum_crypto::drbg::ChaChaDrbg;
/// let mut drbg = ChaChaDrbg::from_seed([9u8; 32]);
/// let a: [u8; 16] = drbg.random_array();
/// let b: [u8; 16] = drbg.random_array();
/// assert_ne!(a, b);
/// ```
#[derive(Clone)]
pub struct ChaChaDrbg {
    key: [u8; 32],
    counter: u64,
}

impl core::fmt::Debug for ChaChaDrbg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never expose the internal key.
        write!(f, "ChaChaDrbg {{ counter: {} }}", self.counter)
    }
}

impl ChaChaDrbg {
    /// Creates a DRBG from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        Self {
            key: seed,
            counter: 0,
        }
    }

    /// Mixes additional entropy into the generator state.
    pub fn reseed(&mut self, entropy: &[u8]) {
        let mut hasher = crate::sha3::Sha3_256::new();
        hasher.update(&self.key);
        hasher.update(entropy);
        self.key = hasher.finalize();
    }

    fn nonce(&self) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&self.counter.to_le_bytes());
        nonce
    }

    /// Fills `dest` with random bytes and erases the old key.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let cipher = ChaCha20::new(&self.key, &self.nonce());
        self.counter = self.counter.wrapping_add(1);

        // Block 0 becomes the next key (fast key erasure); the output stream
        // starts at block 1.
        let next_key_block = cipher.block(0);
        let mut produced = 0;
        let mut block_counter = 1u32;
        while produced < dest.len() {
            let block = cipher.block(block_counter);
            block_counter += 1;
            let n = (dest.len() - produced).min(64);
            dest[produced..produced + n].copy_from_slice(&block[..n]);
            produced += n;
        }
        self.key.copy_from_slice(&next_key_block[..32]);
    }

    /// Returns a random fixed-size array.
    pub fn random_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.fill_bytes(&mut out);
        out
    }

    /// Returns a uniformly random `u64`.
    pub fn random_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.random_array())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaChaDrbg::from_seed([1; 32]);
        let mut b = ChaChaDrbg::from_seed([1; 32]);
        assert_eq!(a.random_array::<64>(), b.random_array::<64>());
        assert_eq!(a.random_u64(), b.random_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaChaDrbg::from_seed([1; 32]);
        let mut b = ChaChaDrbg::from_seed([2; 32]);
        assert_ne!(a.random_array::<32>(), b.random_array::<32>());
    }

    #[test]
    fn successive_outputs_differ() {
        let mut a = ChaChaDrbg::from_seed([0; 32]);
        let x: [u8; 32] = a.random_array();
        let y: [u8; 32] = a.random_array();
        assert_ne!(x, y);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = ChaChaDrbg::from_seed([1; 32]);
        let mut b = ChaChaDrbg::from_seed([1; 32]);
        b.reseed(b"extra entropy");
        assert_ne!(a.random_array::<32>(), b.random_array::<32>());
    }

    #[test]
    fn key_erasure_forward_secrecy() {
        // After generating output, the internal key must have changed, so a
        // later state compromise does not reveal earlier outputs.
        let mut a = ChaChaDrbg::from_seed([7; 32]);
        let key_before = a.key;
        let _ = a.random_array::<8>();
        assert_ne!(a.key, key_before);
    }

    #[test]
    fn large_requests_span_blocks() {
        let mut a = ChaChaDrbg::from_seed([3; 32]);
        let mut buf = vec![0u8; 1000];
        a.fill_bytes(&mut buf);
        // Not all zero and not trivially repeating.
        assert_ne!(&buf[..64], &buf[64..128]);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let a = ChaChaDrbg::from_seed([0xaa; 32]);
        assert!(!format!("{a:?}").contains("170"));
    }
}
