//! Strongly typed physical and virtual addresses and page numbers.
//!
//! Using newtypes for the four address spaces (physical/virtual ×
//! address/page-number) prevents the most common class of bugs in monitor
//! code: passing a guest-virtual quantity where a physical one was expected.

use core::fmt;
use serde::{Deserialize, Serialize};

/// The architectural page size used throughout the system (4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Number of bits in the page offset.
pub const PAGE_SHIFT: u32 = 12;

/// A physical memory address.
///
/// # Examples
///
/// ```
/// use sanctorum_hal::addr::{PhysAddr, PAGE_SIZE};
/// let a = PhysAddr::new(0x8000_1010);
/// assert_eq!(a.page_offset(), 0x10);
/// assert_eq!(a.align_down().as_u64(), 0x8000_1000);
/// assert_eq!(a.align_down().page_offset(), 0);
/// assert_eq!(PAGE_SIZE, 4096);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a new physical address.
    pub const fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// Returns the raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the address as a `usize` (the simulator indexes memory with it).
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the physical page number containing this address.
    pub const fn page_number(self) -> PhysPageNum {
        PhysPageNum(self.0 >> PAGE_SHIFT)
    }

    /// Returns the offset of this address within its page.
    pub const fn page_offset(self) -> usize {
        (self.0 as usize) & (PAGE_SIZE - 1)
    }

    /// Returns `true` if the address is page aligned.
    pub const fn is_page_aligned(self) -> bool {
        self.page_offset() == 0
    }

    /// Rounds the address down to the containing page boundary.
    pub const fn align_down(self) -> Self {
        Self(self.0 & !((PAGE_SIZE as u64) - 1))
    }

    /// Rounds the address up to the next page boundary.
    pub const fn align_up(self) -> Self {
        Self((self.0 + PAGE_SIZE as u64 - 1) & !((PAGE_SIZE as u64) - 1))
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0 + bytes)
    }

    /// Checked difference between two physical addresses.
    pub const fn checked_sub(self, other: Self) -> Option<u64> {
        self.0.checked_sub(other.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA {:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

/// A contiguous range of physical bytes `[base, base + len)`.
///
/// A `Span` is pure geometry: it carries no claim about who may access the
/// bytes or whether they are populated DRAM. Untrusted callers hand spans to
/// the monitor wrapped in `sanctorum_trust::Tainted<Span>`; the trust
/// boundary turns them into `Checked<Span, _>` proofs.
///
/// # Examples
///
/// ```
/// use sanctorum_hal::addr::{PhysAddr, Span};
/// let s = Span::new(PhysAddr::new(0x8000_1000), 64);
/// assert_eq!(s.base().as_u64(), 0x8000_1000);
/// assert_eq!(s.len(), 64);
/// assert_eq!(s.last().unwrap().as_u64(), 0x8000_103f);
/// assert!(Span::new(PhysAddr::new(0x8000_1000), 0).is_empty());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Span {
    base: PhysAddr,
    len: u64,
}

impl Span {
    /// Creates a span covering `[base, base + len)`.
    pub const fn new(base: PhysAddr, len: u64) -> Self {
        Self { base, len }
    }

    /// The first address of the span.
    pub const fn base(self) -> PhysAddr {
        self.base
    }

    /// Length of the span in bytes.
    pub const fn len(self) -> u64 {
        self.len
    }

    /// Returns `true` if the span covers no bytes.
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The last address covered by the span, or `None` if it is empty.
    pub const fn last(self) -> Option<PhysAddr> {
        if self.len == 0 {
            None
        } else {
            Some(PhysAddr(self.base.0 + self.len - 1))
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}; {} bytes)", self.base.0, self.len)
    }
}

/// A physical page number (address divided by [`PAGE_SIZE`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysPageNum(u64);

impl PhysPageNum {
    /// Creates a page number from its index.
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the page index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the base physical address of the page.
    pub const fn base_address(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the page number immediately after this one.
    #[must_use]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl fmt::Display for PhysPageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PPN {:#x}", self.0)
    }
}

impl From<PhysAddr> for PhysPageNum {
    fn from(a: PhysAddr) -> Self {
        a.page_number()
    }
}

/// A guest-virtual memory address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a new virtual address.
    pub const fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// Returns the raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the virtual page number containing this address.
    pub const fn page_number(self) -> VirtPageNum {
        VirtPageNum(self.0 >> PAGE_SHIFT)
    }

    /// Returns the offset of this address within its page.
    pub const fn page_offset(self) -> usize {
        (self.0 as usize) & (PAGE_SIZE - 1)
    }

    /// Returns `true` if the address is page aligned.
    pub const fn is_page_aligned(self) -> bool {
        self.page_offset() == 0
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0 + bytes)
    }

    /// Returns `true` if `self` lies in `[base, base + len)`.
    pub const fn in_range(self, base: VirtAddr, len: u64) -> bool {
        self.0 >= base.0 && self.0 < base.0 + len
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA {:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

/// A guest-virtual page number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtPageNum(u64);

impl VirtPageNum {
    /// Creates a virtual page number from its index.
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the page index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the base virtual address of the page.
    pub const fn base_address(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the three 9-bit Sv39-style page-table indices for this page,
    /// from root level (index 0) to leaf level (index 2).
    pub const fn table_indices(self) -> [usize; 3] {
        let v = self.0;
        [
            ((v >> 18) & 0x1ff) as usize,
            ((v >> 9) & 0x1ff) as usize,
            (v & 0x1ff) as usize,
        ]
    }

    /// Returns the page number immediately after this one.
    #[must_use]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl fmt::Display for VirtPageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VPN {:#x}", self.0)
    }
}

impl From<VirtAddr> for VirtPageNum {
    fn from(a: VirtAddr) -> Self {
        a.page_number()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn phys_addr_page_round_trip() {
        let a = PhysAddr::new(0x8000_2345);
        assert_eq!(a.page_number().base_address().as_u64(), 0x8000_2000);
        assert_eq!(a.page_offset(), 0x345);
        assert!(!a.is_page_aligned());
        assert!(a.align_down().is_page_aligned());
        assert_eq!(a.align_up().as_u64(), 0x8000_3000);
    }

    #[test]
    fn align_up_of_aligned_address_is_identity() {
        let a = PhysAddr::new(0x8000_1000);
        assert_eq!(a.align_up(), a);
        assert_eq!(a.align_down(), a);
    }

    #[test]
    fn virt_addr_table_indices() {
        // VPN = 0b000000001_000000010_000000011 = (1, 2, 3)
        let vpn = VirtPageNum::new((1 << 18) | (2 << 9) | 3);
        assert_eq!(vpn.table_indices(), [1, 2, 3]);
    }

    #[test]
    fn virt_addr_in_range() {
        let base = VirtAddr::new(0x1000);
        assert!(VirtAddr::new(0x1000).in_range(base, 0x1000));
        assert!(VirtAddr::new(0x1fff).in_range(base, 0x1000));
        assert!(!VirtAddr::new(0x2000).in_range(base, 0x1000));
        assert!(!VirtAddr::new(0xfff).in_range(base, 0x1000));
    }

    #[test]
    fn phys_checked_sub() {
        let a = PhysAddr::new(0x2000);
        let b = PhysAddr::new(0x1000);
        assert_eq!(a.checked_sub(b), Some(0x1000));
        assert_eq!(b.checked_sub(a), None);
    }

    proptest! {
        #[test]
        fn page_number_and_offset_recompose(addr in 0u64..(1 << 48)) {
            let a = PhysAddr::new(addr);
            let recomposed =
                a.page_number().base_address().as_u64() + a.page_offset() as u64;
            prop_assert_eq!(recomposed, addr);
        }

        #[test]
        fn table_indices_are_9_bit(vpn in 0u64..(1 << 27)) {
            let idx = VirtPageNum::new(vpn).table_indices();
            for i in idx {
                prop_assert!(i < 512);
            }
            let recomposed = ((idx[0] as u64) << 18) | ((idx[1] as u64) << 9) | idx[2] as u64;
            prop_assert_eq!(recomposed, vpn);
        }

        #[test]
        fn align_down_le_addr_le_align_up(addr in 0u64..(1 << 48)) {
            let a = PhysAddr::new(addr);
            prop_assert!(a.align_down().as_u64() <= addr);
            prop_assert!(a.align_up().as_u64() >= addr);
            prop_assert!(a.align_up().as_u64() - a.align_down().as_u64() <= PAGE_SIZE as u64);
        }
    }
}
