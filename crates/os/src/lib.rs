//! The untrusted operating system model and whole-system simulator.
//!
//! The paper's threat model treats the OS as arbitrary — possibly malicious —
//! privileged software that nevertheless has to go through the SM API to
//! manage machine resources. This crate provides:
//!
//! * [`system`] — boots a complete simulated system (machine + platform
//!   backend + secure-booted monitor) on either the Sanctum or the Keystone
//!   backend;
//! * [`os`] — an honest OS model that loads enclave images through the SM
//!   API, schedules their threads on harts, drives the Fig. 1 event loop
//!   (delegated traps, AEX resumption) and tears enclaves down;
//! * [`adversary`] — scripted malicious-OS behaviours (reading enclave
//!   memory, mapping it into OS page tables, DMA into enclave memory,
//!   deleting a running enclave, spoofing mail, replaying stale grants,
//!   TOCTOU page mutation, interrupt storms), reified as the enumerable
//!   [`adversary::AttackKind`] battery the security test-suite and the
//!   adversarial explorer both drive;
//! * [`ops`] — every OS/enclave/adversary interaction as one enumerable
//!   [`ops::Op`] value plus the [`ops::OpWorld`] executor, the op model the
//!   `sanctorum-explorer` crate schedules, replays and shrinks;
//! * [`fleet`] — multi-machine attestation worlds: N independent systems
//!   under one manufacturer CA, driven against a shared concurrent verifier
//!   by the fleet benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod concurrent;
pub mod fleet;
pub mod ops;
pub mod os;
pub mod system;

pub use adversary::{AttackKind, AttackOutcome};
pub use fleet::{Fleet, FleetConfig, FleetMachine, RoundOutcome};
pub use ops::{ImageKind, Op, OpOutcome, OpWorld};
pub use os::{BuiltEnclave, Os, ThreadRunOutcome};
pub use system::{PlatformKind, System};
