//! Sanctorum: a lightweight security monitor for secure enclaves.
//!
//! This crate is the heart of the reproduction of Lebedev et al.,
//! *"Sanctorum: A lightweight security monitor for secure enclaves"*
//! (DATE 2019). It implements the security monitor (SM) described in the
//! paper's Sections V and VI:
//!
//! * the machine-resource ownership state machine of Fig. 2 ([`resource`]);
//! * the enclave lifecycle of Fig. 3 and the enclave-thread lifecycle of
//!   Fig. 4 ([`enclave`], [`thread`], [`monitor`]);
//! * SHA-3 measurement of enclave initial state with the monotonic
//!   physical-order (no-aliasing) invariant of Section VI-A
//!   ([`measurement`]);
//! * SM-mediated mailboxes for local attestation, Figs. 5–6 ([`mailbox`]);
//! * secure boot and the attestation certificate chain / signing-enclave key
//!   release of Section VI-C and Fig. 7 ([`boot`], [`attestation`]);
//! * the event-dispatch flow of Fig. 1, including asynchronous enclave exits
//!   and batched calls ([`dispatch`]), and the unified call surface — the
//!   typed [`api::SmApi`] trait, the one-declaration call registry, and the
//!   register-level ABI ([`api`]) — authenticated through per-hart caller
//!   sessions ([`session`]);
//! * fine-grained locking with explicit concurrent-transaction failures
//!   (Section V-A) plus a global-lock build for the ablation study
//!   ([`monitor::LockingMode`]), backed by a documented lock hierarchy with
//!   a debug-build order checker ([`lockorder`]) and a resource map sharded
//!   for true multi-hart parallelism ([`resource::ShardedResourceMap`]), with
//!   an epoch-based non-blocking read-side for the lookup tables ([`epoch`])
//!   and per-hart batched id allocation ([`idalloc`]).
//!
//! The monitor is written against the platform traits of `sanctorum-hal`;
//! the `sanctorum-sanctum` and `sanctorum-keystone` crates bind it to the
//! two hardware models the paper targets (Section VII).
//!
//! # Examples
//!
//! Booting a monitor on the simulated machine requires a platform backend;
//! see the `sanctorum-sanctum` / `sanctorum-keystone` crates and the
//! workspace examples for complete end-to-end flows. Crate-local pieces can
//! be used directly:
//!
//! ```
//! use sanctorum_core::boot::secure_boot;
//! use sanctorum_core::measurement::MeasurementContext;
//! use sanctorum_hal::addr::VirtAddr;
//! use sanctorum_hal::root::SimulatedRootOfTrust;
//!
//! let identity = secure_boot(&SimulatedRootOfTrust::new(1), b"sm image");
//! let mut ctx = MeasurementContext::start(
//!     &identity.sm_measurement,
//!     VirtAddr::new(0x10000),
//!     0x4000,
//! );
//! ctx.extend_page(VirtAddr::new(0x10000), &[0u8; 4096]);
//! let measurement = ctx.finalize();
//! assert_eq!(measurement.as_bytes().len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod attestation;
pub mod boot;
pub mod dispatch;
pub mod enclave;
pub mod epoch;
pub mod error;
pub mod idalloc;
pub mod lockorder;
pub mod mailbox;
pub mod measurement;
pub mod monitor;
pub mod resource;
pub mod session;
pub mod thread;

pub use api::{status, status_of, CallOutcome, SmApi, SmCall, MAX_BATCH_CALLS};
pub use attestation::{AttestationEvidence, AttestationReport, Certificate};
pub use boot::{secure_boot, SmIdentity};
pub use dispatch::EventOutcome;
pub use error::{SmError, SmResult};
pub use measurement::Measurement;
pub use monitor::{
    AuditSnapshot, EnclaveAudit, EnclaveEntry, LockingMode, PublicField, SecurityMonitor,
    SmConfig, TestWeakening,
};
pub use resource::{ResourceId, ResourceState};
pub use session::CallerSession;
pub use thread::{ThreadId, ThreadState};
