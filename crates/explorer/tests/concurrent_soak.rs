//! The concurrent soak (ISSUE 5): four real OS threads hammer one shared
//! monitor on **both** backends, with the invariant kernel's quiescent
//! checks (audit ≡ audit_full, resource exclusivity, mail-quota
//! conservation) asserted at every round barrier — zero violations
//! expected. A smaller Global-mode soak pins the giant-lock build to the
//! same properties (it serializes, so it had better also be correct).
//!
//! `SOAK_THREADS` / `SOAK_ROUNDS` / `SOAK_OPS` raise the budget in CI.

use sanctorum_core::monitor::{LockingMode, SmConfig};
use sanctorum_explorer::concurrent::{concurrent_machine_config, soak, WorkloadProfile};
use sanctorum_os::concurrent::ConcurrentConfig;
use sanctorum_os::system::{PlatformKind, System};

fn env_budget(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn soak_system(platform: PlatformKind, locking: LockingMode) -> System {
    System::boot(
        platform,
        concurrent_machine_config(),
        SmConfig {
            locking,
            ..SmConfig::default()
        },
    )
}

fn budgeted_config(profile: WorkloadProfile, seed: u64) -> ConcurrentConfig {
    ConcurrentConfig {
        threads: env_budget("SOAK_THREADS", 4) as usize,
        rounds: env_budget("SOAK_ROUNDS", 3) as usize,
        ops_per_round: env_budget("SOAK_OPS", 150) as usize,
        profile,
        seed,
    }
}

#[test]
fn four_thread_soak_on_both_backends_finds_no_violations() {
    for platform in PlatformKind::ALL {
        for (profile, seed) in [
            (WorkloadProfile::MixedMutation, 0x50a1),
            (WorkloadProfile::ReadMostly, 0x50a2),
        ] {
            let system = soak_system(platform, LockingMode::FineGrained);
            let config = budgeted_config(profile, seed);
            let report = soak(&system, &config)
                .unwrap_or_else(|err| panic!("{platform:?}/{}: {err}", profile.name()));
            assert_eq!(
                report.stats.steps,
                (config.threads * config.rounds * config.ops_per_round) as u64,
                "{platform:?}/{}: all scheduled steps must complete",
                profile.name()
            );
            assert_eq!(report.audits, config.rounds);
            eprintln!(
                "soak {platform:?}/{}: {} steps, {} SM calls, {} retries",
                profile.name(),
                report.stats.steps,
                report.stats.sm_calls,
                report.stats.retries
            );
        }
    }
}

#[test]
fn global_lock_soak_holds_the_same_invariants() {
    let system = soak_system(PlatformKind::Sanctum, LockingMode::Global);
    let config = ConcurrentConfig {
        threads: 4,
        rounds: 2,
        ops_per_round: 60,
        profile: WorkloadProfile::MixedMutation,
        seed: 0x6a0b,
    };
    let report = soak(&system, &config).expect("global-mode soak stays clean");
    assert_eq!(
        report.stats.retries, 0,
        "the giant lock serializes every call; ConcurrentCall must never surface"
    );
}

#[test]
fn quiescent_check_passes_on_a_fresh_monitor() {
    let system = soak_system(PlatformKind::Keystone, LockingMode::FineGrained);
    sanctorum_explorer::concurrent::quiescent_invariants(&system).expect("fresh monitor is clean");
}
