//! The custom static-analysis pass behind `cargo xtask lint`.
//!
//! Four source-level rules the Rust compiler cannot enforce by itself:
//!
//! * **Rule A — proof confinement.** `Checked { .. }` struct expressions may
//!   appear only in `crates/trust/src/sanitizer.rs`. The struct's private
//!   fields already stop foreign crates; this rule additionally stops code
//!   *inside* the trust crate (and any future `pub(crate)` leak) from
//!   minting proofs outside the sanitizer module.
//! * **Rule B — sink signatures.** The registered memory sinks must not
//!   take raw `PhysAddr` / `Span` / `Tainted` parameters: their signatures
//!   are required to demand `Checked<_>` proofs. A sink disappearing from
//!   its file is also an error, so the registry cannot silently go stale.
//! * **Rule C — lock-rank documentation.** Every `OrderedMutex` /
//!   `OrderedRwLock` / `EpochCell` declaration (struct field, type alias,
//!   or static) must carry a comment naming its rank from `lockorder.rs`'s
//!   documented hierarchy, so the declared hierarchy and the code never
//!   drift apart. `EpochCell` is in scope because its load/publish/quiesce
//!   operations participate in the rank discipline exactly like a lock
//!   acquisition (the retire list rides on the cell's rank).
//! * **Rule D — fault-point classification.** Every `fault_point!(` call
//!   site must carry a `// journal:` or `// atomic:` comment (same line or
//!   the contiguous comment block above) stating its crash-consistency
//!   story: `journal:` — the crossing sits inside a journaled window and a
//!   crash there is repaired by replaying the pending intent entry;
//!   `atomic:` — the crossing precedes an all-or-nothing step, so a crash
//!   or injected failure leaves the previous state intact. An unclassified
//!   crossing is untested crash surface by construction (see
//!   ARCHITECTURE.md, "Fault model & recovery").
//!
//! The pass is a deliberately simple hand-rolled scanner (the container has
//! no `syn`): comments and string literals are blanked before rules A and B
//! run, and rule C reads the comments themselves. Unit tests below seed
//! violation fixtures through the same entry points CI uses.

use std::fmt;
use std::path::{Path, PathBuf};

/// One finding; rendered like a compiler diagnostic.
#[derive(Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number (0 = whole file).
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}]: {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// The sinks whose signatures must demand `Checked<_>` proofs.
///
/// `(file, fn name)`; extend this list when a new function starts touching
/// memory on behalf of untrusted callers.
const SINK_REGISTRY: &[(&str, &str)] = &[
    ("crates/machine/src/machine.rs", "read_span"),
    ("crates/machine/src/machine.rs", "write_span"),
    ("crates/machine/src/machine.rs", "read_page"),
    ("crates/core/src/mailbox.rs", "send"),
];

/// The only module allowed to construct `Checked`.
const SANITIZER_FILE: &str = "crates/trust/src/sanitizer.rs";

/// File defining the rank vocabulary (exempt from rule C — it *is* the
/// hierarchy).
const LOCKORDER_FILE: &str = "crates/core/src/lockorder.rs";

/// Runs all rules over the workspace rooted at `root`.
pub fn run(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    collect_rust_files(&root.join("crates"), root, &mut files);
    collect_rust_files(&root.join("src"), root, &mut files);
    collect_rust_files(&root.join("tests"), root, &mut files);
    files.sort();

    let ranks = match std::fs::read_to_string(root.join(LOCKORDER_FILE)) {
        Ok(src) => rank_names(&src),
        Err(e) => {
            return vec![Violation {
                file: LOCKORDER_FILE.to_string(),
                line: 0,
                rule: "lock-rank",
                message: format!("cannot read rank vocabulary: {e}"),
            }]
        }
    };

    let mut violations = Vec::new();
    let mut sinks_seen = vec![false; SINK_REGISTRY.len()];
    for rel in &files {
        let Ok(src) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        let rel = rel.to_string_lossy().replace('\\', "/");
        violations.extend(check_file(&rel, &src, &ranks, &mut sinks_seen));
    }
    for (seen, (file, name)) in sinks_seen.iter().zip(SINK_REGISTRY) {
        if !seen {
            violations.push(Violation {
                file: (*file).to_string(),
                line: 0,
                rule: "sink-signature",
                message: format!(
                    "registered sink `fn {name}` not found — update SINK_REGISTRY in xtask"
                ),
            });
        }
    }
    violations
}

/// Runs every rule that applies to one file. `sinks_seen` marks which
/// registry entries were found (checked for completeness by [`run`]).
fn check_file(
    rel: &str,
    src: &str,
    ranks: &[String],
    sinks_seen: &mut [bool],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    // Shims model external crates; xtask lints only first-party code.
    if rel.starts_with("crates/shims/") || rel.starts_with("crates/xtask/") {
        return violations;
    }
    let code = strip_comments_and_strings(src);
    if rel != SANITIZER_FILE {
        violations.extend(checked_constructions(rel, &code));
    }
    for (idx, (file, name)) in SINK_REGISTRY.iter().enumerate() {
        if rel == *file {
            if let Some(found) = sink_signature(rel, &code, name) {
                sinks_seen[idx] = true;
                violations.extend(found);
            }
        }
    }
    if rel != LOCKORDER_FILE {
        violations.extend(undocumented_lock_ranks(rel, src, &code, ranks));
    }
    violations.extend(unclassified_fault_points(rel, src, &code));
    violations
}

// ---------------------------------------------------------------------------
// rule A: proof confinement
// ---------------------------------------------------------------------------

/// Finds `Checked { .. }` / `Checked::<..> { .. }` struct expressions.
///
/// Type positions (`Checked<Span, P>`) are not flagged: a struct expression
/// either opens its brace directly after the name or uses turbofish.
fn checked_constructions(rel: &str, code: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    let bytes = code.as_bytes();
    let mut search = 0;
    while let Some(pos) = code[search..].find("Checked") {
        let at = search + pos;
        search = at + "Checked".len();
        // Must be a standalone identifier.
        if at > 0 && (bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_') {
            continue;
        }
        // Skip a turbofish `::<...>` (the only generic form legal in
        // expression position).
        let mut after = search;
        if code[after..].starts_with("::<") {
            let mut depth = 0usize;
            for (i, c) in code[after..].char_indices() {
                match c {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            after += i + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        let next = code[after..].chars().find(|c| !c.is_whitespace());
        if next == Some('{') {
            violations.push(Violation {
                file: rel.to_string(),
                line: line_of(code, at),
                rule: "checked-construction",
                message: "`Checked { .. }` constructed outside the sanitizer module \
                          (crates/trust/src/sanitizer.rs is the only place proofs \
                          may be minted)"
                    .to_string(),
            });
        }
    }
    violations
}

// ---------------------------------------------------------------------------
// rule B: sink signatures
// ---------------------------------------------------------------------------

/// Raw parameter types that must never appear on a registered sink.
const BANNED_SINK_PARAMS: &[&str] = &[": PhysAddr", ": &PhysAddr", ": Span", ": &Span", ": Tainted"];

/// Checks every `fn <name>` signature in `code`; returns `None` if the
/// function does not exist in this file.
fn sink_signature(rel: &str, code: &str, name: &str) -> Option<Vec<Violation>> {
    let mut violations = Vec::new();
    let needle = format!("fn {name}");
    let mut search = 0;
    let mut found = false;
    while let Some(pos) = code[search..].find(&needle) {
        let at = search + pos;
        search = at + needle.len();
        // `fn send` must not match `fn send_mail`.
        match code[search..].chars().next() {
            Some(c) if c.is_alphanumeric() || c == '_' => continue,
            _ => {}
        }
        let Some(open) = code[search..].find('(') else {
            continue;
        };
        let params_start = search + open;
        let mut depth = 0usize;
        let mut end = params_start;
        for (i, c) in code[params_start..].char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = params_start + i;
                        break;
                    }
                }
                _ => {}
            }
        }
        found = true;
        let params = &code[params_start..end];
        for banned in BANNED_SINK_PARAMS {
            if params.contains(banned) {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: line_of(code, at),
                    rule: "sink-signature",
                    message: format!(
                        "sink `fn {name}` takes a raw `{}` parameter — sinks must demand \
                         `Checked<_>` proofs",
                        banned.trim_start_matches(": ")
                    ),
                });
            }
        }
    }
    found.then_some(violations)
}

// ---------------------------------------------------------------------------
// rule C: lock-rank documentation
// ---------------------------------------------------------------------------

/// Extracts the rank vocabulary from `lockorder.rs` (`pub const NAME: ...`
/// inside the `rank` module — in practice every upper-case const).
fn rank_names(lockorder_src: &str) -> Vec<String> {
    let mut names = Vec::new();
    for line in lockorder_src.lines() {
        let line = line.trim_start();
        if let Some(rest) = line.strip_prefix("pub const ") {
            if let Some((name, _)) = rest.split_once(':') {
                let name = name.trim();
                if !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
                {
                    names.push(name.to_string());
                }
            }
        }
    }
    names
}

/// Flags `OrderedMutex` / `OrderedRwLock` / `EpochCell` declarations
/// (fields, type aliases, statics) whose surrounding comment does not name
/// a known rank.
///
/// `raw` is the original source (comments intact); `code` the stripped
/// version used to decide what is a real declaration.
fn undocumented_lock_ranks(
    rel: &str,
    raw: &str,
    code: &str,
    ranks: &[String],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let raw_lines: Vec<&str> = raw.lines().collect();
    for (idx, line) in code.lines().enumerate() {
        if !(line.contains("OrderedMutex<")
            || line.contains("OrderedRwLock<")
            || line.contains("EpochCell<"))
        {
            continue;
        }
        let trimmed = line.trim_start();
        // Only declarations: struct fields (`name: ...Ordered...<`), type
        // aliases and statics. Function signatures, generic bounds, local
        // borrows and expressions are out of scope.
        let is_alias = trimmed.starts_with("type ") || trimmed.starts_with("pub type ");
        let is_static = trimmed.starts_with("static ") || trimmed.starts_with("pub static ");
        let is_field = !is_alias
            && !is_static
            && !trimmed.contains("fn ")
            && !trimmed.contains('&')
            && field_declaration(trimmed);
        if !(is_alias || is_static || is_field) {
            continue;
        }
        // Look for a rank name on the declaration line itself or in the
        // contiguous comment block immediately above it.
        let mut documented = rank_mentioned(raw_lines.get(idx).copied().unwrap_or(""), ranks);
        let mut above = idx;
        while !documented && above > 0 {
            above -= 1;
            let candidate = raw_lines[above].trim_start();
            if candidate.starts_with("///") || candidate.starts_with("//") {
                documented = rank_mentioned(candidate, ranks);
            } else {
                break;
            }
        }
        if !documented {
            violations.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "lock-rank",
                message: format!(
                    "`{}` declaration lacks a rank comment naming one of lockorder.rs's \
                     documented ranks",
                    if line.contains("OrderedRwLock<") {
                        "OrderedRwLock"
                    } else if line.contains("EpochCell<") {
                        "EpochCell"
                    } else {
                        "OrderedMutex"
                    }
                ),
            });
        }
    }
    violations
}

// ---------------------------------------------------------------------------
// rule D: fault-point classification
// ---------------------------------------------------------------------------

/// Flags `fault_point!(` call sites whose surrounding comment does not
/// state a `journal:` or `atomic:` crash-consistency classification.
///
/// Scanning the stripped `code` skips prose mentions in comments and
/// strings, and the `(` requirement skips the `macro_rules! fault_point`
/// definition itself; the classification comment is then searched in the
/// raw source, on the call line or the contiguous comment block above it
/// (the same discipline rule C uses for lock ranks).
fn unclassified_fault_points(rel: &str, raw: &str, code: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    let raw_lines: Vec<&str> = raw.lines().collect();
    for (idx, line) in code.lines().enumerate() {
        if !line.contains("fault_point!(") {
            continue;
        }
        let classified = |candidate: &str| {
            candidate.contains("journal:") || candidate.contains("atomic:")
        };
        let mut documented = classified(raw_lines.get(idx).copied().unwrap_or(""));
        let mut above = idx;
        while !documented && above > 0 {
            above -= 1;
            let candidate = raw_lines[above].trim_start();
            if candidate.starts_with("///") || candidate.starts_with("//") {
                documented = classified(candidate);
            } else {
                break;
            }
        }
        if !documented {
            violations.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "fault-classification",
                message: "`fault_point!` call site lacks a `// journal:` or `// atomic:` \
                          crash-consistency classification comment"
                    .to_string(),
            });
        }
    }
    violations
}

/// `name: Type` or `pub name: Type` with an identifier before the colon.
fn field_declaration(trimmed: &str) -> bool {
    let rest = trimmed
        .strip_prefix("pub(crate) ")
        .or_else(|| trimmed.strip_prefix("pub(super) "))
        .or_else(|| trimmed.strip_prefix("pub "))
        .unwrap_or(trimmed);
    let Some((name, _)) = rest.split_once(':') else {
        return false;
    };
    let name = name.trim();
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Whether `line` mentions any known rank name as a whole word.
fn rank_mentioned(line: &str, ranks: &[String]) -> bool {
    ranks.iter().any(|rank| {
        line.match_indices(rank.as_str()).any(|(pos, _)| {
            let bytes = line.as_bytes();
            let before_ok = pos == 0 || {
                let b = bytes[pos - 1];
                !(b.is_ascii_alphanumeric() || b == b'_')
            };
            let after = pos + rank.len();
            let after_ok = after >= bytes.len() || {
                let b = bytes[after];
                !(b.is_ascii_alphanumeric() || b == b'_')
            };
            before_ok && after_ok
        })
    })
}

// ---------------------------------------------------------------------------
// source preprocessing and helpers
// ---------------------------------------------------------------------------

/// Blanks comments and string/char literals, preserving line structure so
/// byte offsets still map to the original line numbers.
fn strip_comments_and_strings(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let rest = &src[i..];
        if rest.starts_with("//") {
            let end = rest.find('\n').map_or(bytes.len(), |p| i + p);
            blank(&mut out, &bytes[i..end]);
            i = end;
        } else if rest.starts_with("/*") {
            // Rust block comments nest.
            let mut depth = 0usize;
            let mut j = i;
            while j < bytes.len() {
                if src[j..].starts_with("/*") {
                    depth += 1;
                    j += 2;
                } else if src[j..].starts_with("*/") {
                    depth -= 1;
                    j += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    j += 1;
                }
            }
            blank(&mut out, &bytes[i..j]);
            i = j;
        } else if rest.starts_with("r\"") || rest.starts_with("r#") {
            // Raw string: count the hashes, find the matching close quote.
            let hashes = rest[1..].bytes().take_while(|b| *b == b'#').count();
            let open = 1 + hashes + 1; // r##"
            let close = format!("\"{}", "#".repeat(hashes));
            let end = rest[open..]
                .find(&close)
                .map_or(bytes.len(), |p| i + open + p + close.len());
            blank(&mut out, &bytes[i..end]);
            i = end;
        } else if bytes[i] == b'"' {
            let mut j = i + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            blank(&mut out, &bytes[i..j.min(bytes.len())]);
            i = j.min(bytes.len());
        } else if bytes[i] == b'\'' {
            // Char literal vs. lifetime: a literal closes within a few
            // bytes ('x' or '\n'); a lifetime never has a closing quote.
            let lookahead = &bytes[i + 1..bytes.len().min(i + 8)];
            let close = lookahead.iter().position(|b| *b == b'\'');
            let is_literal = match close {
                Some(p) => p > 0 || lookahead.first() == Some(&b'\\'),
                None => false,
            };
            if is_literal {
                let end = i + 2 + close.unwrap_or(0);
                blank(&mut out, &bytes[i..end.min(bytes.len())]);
                i = end.min(bytes.len());
            } else {
                out.push(bytes[i]);
                i += 1;
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Replaces every byte with a space, newlines excepted.
fn blank(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend(bytes.iter().map(|b| if *b == b'\n' { b'\n' } else { b' ' }));
}

/// 1-based line number of byte offset `at`.
fn line_of(code: &str, at: usize) -> usize {
    code[..at].bytes().filter(|b| *b == b'\n').count() + 1
}

/// Recursively collects `.rs` files (workspace-relative), skipping `target`.
fn collect_rust_files(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rust_files(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RANKS: &[&str] = &[
        "ENCLAVE_TABLE",
        "ENCLAVE_EPOCH",
        "MAIL_LEDGER",
        "BACKEND",
        "MODEL_VISITED",
        "VERIFIER_DRBG",
        "VERIFIER_TRUST_EPOCH",
    ];

    fn ranks() -> Vec<String> {
        RANKS.iter().map(|s| s.to_string()).collect()
    }

    /// Drives a seeded fixture through the same per-file entry point CI
    /// uses, with a fresh sink-seen table.
    fn lint_fixture(rel: &str, src: &str) -> Vec<Violation> {
        let mut sinks_seen = vec![false; SINK_REGISTRY.len()];
        check_file(rel, src, &ranks(), &mut sinks_seen)
    }

    #[test]
    fn seeded_checked_forgery_fails() {
        let fixture = r#"
            fn forge() -> Checked<Span, RwAccess> {
                Checked { value: span, proof: RwAccess(()) }
            }
        "#;
        let violations = lint_fixture("crates/core/src/evil.rs", fixture);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "checked-construction");
        assert_eq!(violations[0].line, 3);
    }

    #[test]
    fn turbofish_forgery_fails_too() {
        let fixture = "let c = Checked::<Span, RwAccess> { value, proof };";
        let violations = lint_fixture("crates/core/src/evil.rs", fixture);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "checked-construction");
    }

    #[test]
    fn type_positions_and_sanitizer_are_clean() {
        let ok = r#"
            impl<T: Copy, P: Proof> Checked<T, P> {
                fn use_it(c: &Checked<Span, RwAccess>) {}
            }
        "#;
        assert!(lint_fixture("crates/core/src/fine.rs", ok).is_empty());
        // The sanitizer module itself may construct proofs.
        let minted = "let c = Checked { value, proof: P::witness() };";
        assert!(lint_fixture(SANITIZER_FILE, minted).is_empty());
        // Comments and strings never fire the rule.
        let commented = r#"
            // A forged Checked { value } would be rejected.
            let s = "Checked { value }";
        "#;
        assert!(lint_fixture("crates/core/src/docs.rs", commented).is_empty());
    }

    #[test]
    fn seeded_raw_sink_signature_fails() {
        let fixture = r#"
            impl Machine {
                pub fn read_span(&self, addr: PhysAddr, buf: &mut [u8]) {}
                pub fn write_span<P: CanWrite>(&self, span: &Checked<Span, P>, data: &[u8]) {}
            }
        "#;
        let mut sinks_seen = vec![false; SINK_REGISTRY.len()];
        let violations = check_file(
            "crates/machine/src/machine.rs",
            fixture,
            &ranks(),
            &mut sinks_seen,
        );
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "sink-signature");
        assert!(violations[0].message.contains("read_span"));
        assert!(sinks_seen[0] && sinks_seen[1], "both sinks located");
    }

    #[test]
    fn missing_sink_is_reported_by_run_not_check_file() {
        let mut sinks_seen = vec![false; SINK_REGISTRY.len()];
        let violations = check_file(
            "crates/core/src/mailbox.rs",
            "fn send_mail() {}", // prefix match must not count as `fn send`
            &ranks(),
            &mut sinks_seen,
        );
        assert!(violations.is_empty());
        assert!(!sinks_seen.iter().any(|s| *s));
    }

    #[test]
    fn seeded_undocumented_lock_fails() {
        let fixture = r#"
            struct State {
                /// Table of enclaves (rank `ENCLAVE_TABLE`).
                enclaves: OrderedRwLock<Vec<Slot>>,
                ledger: OrderedMutex<Ledger>,
            }
        "#;
        let violations = lint_fixture("crates/core/src/state.rs", fixture);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "lock-rank");
        assert_eq!(violations[0].line, 5);
    }

    #[test]
    fn seeded_undocumented_epoch_cell_fails() {
        // An epoch cell participates in the rank discipline like a lock:
        // declaring one without naming its lockorder.rs rank is a violation.
        let bare = r#"
            struct State {
                enclave_epoch: EpochCell<BTreeMap<EnclaveId, EnclaveHandle>>,
            }
        "#;
        let violations = lint_fixture("crates/core/src/state.rs", bare);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "lock-rank");
        assert!(violations[0].message.contains("EpochCell"), "{violations:?}");
        // The same declaration with its rank documented is clean, and the
        // `EpochCell` struct/impl definitions themselves are not
        // declarations (no field colon), so epoch.rs stays in jurisdiction
        // without false positives.
        let documented = r#"
            pub struct EpochCell<T> {
                rank: LockRank,
            }
            struct State {
                /// Read-side snapshots of the enclave table (rank
                /// `ENCLAVE_EPOCH`, published under `ENCLAVE_TABLE`).
                enclave_epoch: EpochCell<BTreeMap<EnclaveId, EnclaveHandle>>,
            }
        "#;
        assert!(lint_fixture("crates/core/src/state.rs", documented).is_empty());
    }

    #[test]
    fn modelcheck_crate_is_inside_rule_c_jurisdiction() {
        // The model checker is first-party code, not a shim: an ordered
        // lock declared there without its lockorder.rs rank comment must be
        // flagged like anywhere else in the workspace.
        let bare = r#"
            struct SharedSearch {
                visited: OrderedMutex<HashSet<u128>>,
            }
        "#;
        let violations = lint_fixture("crates/modelcheck/src/search.rs", bare);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "lock-rank");
        let documented = r#"
            struct SharedSearch {
                /// Visited-state set, shared across expansion workers
                /// (rank `MODEL_VISITED`, above every monitor rank).
                visited: OrderedMutex<HashSet<u128>>,
            }
        "#;
        assert!(lint_fixture("crates/modelcheck/src/search.rs", documented).is_empty());
    }

    #[test]
    fn verifier_crate_epoch_cells_are_inside_rule_c_jurisdiction() {
        // The concurrent verifier tier declares both ordered locks and
        // epoch cells; every such declaration must name its
        // lockorder.rs rank, exactly like monitor-side locks — the rank
        // table is the one place the cross-tier acquisition order lives.
        let bare = r#"
            pub struct RemoteVerifier {
                drbg: OrderedMutex<ChaChaDrbg>,
                trust: EpochCell<TrustState>,
            }
        "#;
        let violations = lint_fixture("crates/verifier/src/remote.rs", bare);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().all(|v| v.rule == "lock-rank"));
        assert!(violations[1].message.contains("EpochCell"));
        let documented = r#"
            pub struct RemoteVerifier {
                // lock rank: rank::VERIFIER_DRBG
                drbg: OrderedMutex<ChaChaDrbg>,
                // lock rank: rank::VERIFIER_TRUST_EPOCH (published under
                // the writer lock, loaded lock-free)
                trust: EpochCell<TrustState>,
            }
        "#;
        assert!(lint_fixture("crates/verifier/src/remote.rs", documented).is_empty());
    }

    #[test]
    fn seeded_unclassified_fault_point_fails() {
        let fixture = r#"
            fn scrub(&self) {
                if fault_point!(self.machine.fault_injector(), "monitor.scrub-page")
                    == Crossing::FailOp
                {
                    return Err(SmError::Again);
                }
            }
        "#;
        let violations = lint_fixture("crates/core/src/evil.rs", fixture);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "fault-classification");
        assert_eq!(violations[0].line, 3);
    }

    #[test]
    fn classified_fault_points_and_prose_mentions_are_clean() {
        // Same-line and comment-block-above classifications both count.
        let classified = r#"
            fn scrub(&self) {
                // journal: retried under recovery; a failure keeps the
                // quarantine in place for the next recover() pass.
                if fault_point!(inj, "monitor.scrub-page") == Crossing::FailOp {}
                let _ = fault_point!(inj, "journal.record"); // atomic: append only
            }
        "#;
        assert!(lint_fixture("crates/core/src/fine.rs", classified).is_empty());
        // A stale comment block (interrupted by code) does not classify.
        let interrupted = r#"
            // atomic: this comment documents the *other* crossing.
            let geometry = self.region_geometry(region)?;
            let _ = fault_point!(inj, "backend.assign-region");
        "#;
        assert_eq!(lint_fixture("crates/core/src/evil.rs", interrupted).len(), 1);
        // Prose mentions in comments/strings and the macro definition
        // (no `(` after the name) never fire the rule.
        let prose = r#"
            // The fault_point!(site) macro is documented in fault.rs.
            macro_rules! fault_point {
                ($injector:expr, $site:expr $(,)?) => { $injector.cross($site) };
            }
            let s = "fault_point!(inj, \"backend.assign-region\")";
        "#;
        assert!(lint_fixture("crates/core/src/docs.rs", prose).is_empty());
    }

    #[test]
    fn documented_locks_and_non_declarations_are_clean() {
        let ok = r#"
            /// Quota ledger (rank `MAIL_LEDGER`).
            ledger: OrderedMutex<Ledger>,
            /// Backend mutex sits at rank `BACKEND`.
            pub type BackendHandle = Arc<OrderedMutex<Backend>>;
            fn lock_it(m: &OrderedMutex<Ledger>) {}
            impl<T> OrderedMutex<T> {}
        "#;
        assert!(lint_fixture("crates/core/src/state.rs", ok).is_empty());
    }

    #[test]
    fn rank_vocabulary_is_parsed_from_lockorder() {
        let src = r#"
            pub mod rank {
                pub const ENCLAVE_TABLE: LockRank = LockRank(30);
                pub const RESOURCE_SHARD_BASE: u16 = 10;
                pub fn not_a_rank() {}
            }
        "#;
        let names = rank_names(src);
        assert_eq!(names, vec!["ENCLAVE_TABLE", "RESOURCE_SHARD_BASE"]);
    }

    #[test]
    fn whole_word_rank_matching() {
        let ranks = ranks();
        assert!(rank_mentioned("/// rank `BACKEND`", &ranks));
        assert!(!rank_mentioned("/// rank BACKENDS", &ranks));
    }
}
