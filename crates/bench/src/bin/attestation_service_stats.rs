//! Attestation-service throughput: serial single-slot attestation vs. the
//! pipelined signing-enclave service over the mailbox fabric.
//!
//! The serial baseline reproduces the pre-fabric shape: one request at a
//! time, the signing enclave re-fetching and re-deriving the attestation key
//! per request, a fresh verifier (no caches) validating the full certificate
//! chain for every evidence bundle. The pipelined path is the fabric
//! workload: the service opens once (wildcard request queue + cached
//! keypair), clients submit in waves, the service drains and signs FIFO, and
//! one long-lived verifier batch-verifies with its chain cache warm.
//!
//! Usage:
//!
//! ```text
//! attestation_service_stats [CLIENTS] [--rounds N] [--out PATH] [--baseline PATH]
//! ```
//!
//! * `CLIENTS` — fleet size (default 8).
//! * `--rounds N` — attestation rounds per mode (default 2).
//! * `--out PATH` — write the machine-readable result JSON.
//! * `--baseline PATH` — exit non-zero if the batched throughput regressed
//!   more than 2× (calibration-normalized) against the committed JSON, or if
//!   the measured batched/serial speedup fell below 2×.
//!
//! Run with:
//! `cargo run --release -p sanctorum-bench --bin attestation_service_stats`

use sanctorum_bench::boot_attestation_service;
use sanctorum_core::mailbox::MAILBOX_QUEUE_DEPTH;
use sanctorum_enclave::client::AttestationClient;
use sanctorum_enclave::signing::SigningEnclave;
use sanctorum_os::system::PlatformKind;
use sanctorum_verifier::{ManufacturerCa, RemoteVerifier, SessionPool};
use std::time::Instant;

/// Throughput regression tolerance for the `--baseline` gate.
const MAX_REGRESSION_FACTOR: f64 = 2.0;
/// The batched path must beat the serial baseline by at least this factor
/// (the fabric's reason to exist; gated so a refactor cannot silently lose
/// it).
const MIN_SPEEDUP: f64 = 2.0;

fn main() {
    let mut clients: usize = 8;
    let mut rounds: usize = 2;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rounds" => rounds = args.next().and_then(|v| v.parse().ok()).expect("--rounds N"),
            "--out" => out = Some(args.next().expect("--out PATH")),
            "--baseline" => baseline = Some(args.next().expect("--baseline PATH")),
            other => clients = other.parse().expect("CLIENTS must be a number"),
        }
    }

    let calibration = calibrate();
    let ca = ManufacturerCa::new([0x11; 32]);
    let (system, _os, fleet, signing_enclave) =
        boot_attestation_service(PlatformKind::Sanctum, clients);
    let sm = system.monitor.as_ref();
    let device_cert = ca.certify_device(system.machine.root_of_trust());
    let trusted: Vec<_> = fleet.iter().map(|e| e.measurement).collect();
    let attestation_clients: Vec<AttestationClient> = fleet
        .iter()
        .enumerate()
        .map(|(i, e)| AttestationClient::new(e.eid, [0x33 ^ i as u8; 32]))
        .collect();

    // --- serial single-slot baseline -----------------------------------
    let serial_signing = SigningEnclave::new(signing_enclave.eid);
    let start = Instant::now();
    let mut serial_done = 0usize;
    for round in 0..rounds {
        for client in &attestation_clients {
            // A fresh verifier per attestation: no outstanding-challenge
            // reuse, no chain cache — the pre-fabric cost structure.
            let verifier =
                RemoteVerifier::new(ca.root_public_key(), trusted.clone(), [round as u8; 32]);
            let challenge = verifier.begin();
            let response = client
                .obtain_attestation(sm, &serial_signing, challenge.nonce, device_cert.clone())
                .expect("serial attestation succeeds");
            verifier
                .verify(&response.evidence, &response.enclave_dh_public)
                .expect("serial verification succeeds");
            serial_done += 1;
        }
    }
    let serial_elapsed = start.elapsed().as_secs_f64();
    let serial_per_second = serial_done as f64 / serial_elapsed;

    // --- pipelined fabric service --------------------------------------
    let mut service = SigningEnclave::new(signing_enclave.eid);
    service.open_service(sm).expect("service opens");
    let verifier = RemoteVerifier::new(ca.root_public_key(), trusted, [0x42; 32]);
    let sessions = SessionPool::new();
    let start = Instant::now();
    let mut batched_done = 0usize;
    for _ in 0..rounds {
        for wave in attestation_clients.chunks(MAILBOX_QUEUE_DEPTH) {
            let challenges = verifier.begin_many(wave.len());
            for (client, challenge) in wave.iter().zip(&challenges) {
                client
                    .submit_request(sm, signing_enclave.eid, challenge.nonce)
                    .expect("submit succeeds");
            }
            let served = service.drain(sm).expect("drain succeeds");
            assert_eq!(served.len(), wave.len(), "service must serve the whole wave");
            let evidence: Vec<_> = wave
                .iter()
                .map(|client| {
                    let response = client
                        .collect_response(sm, device_cert.clone())
                        .expect("reply collected");
                    (response.evidence, response.enclave_dh_public)
                })
                .collect();
            for (client, result) in wave.iter().zip(verifier.verify_batch(&evidence)) {
                let session = result.expect("batched verification succeeds");
                sessions.insert(client.eid().as_u64(), session);
                batched_done += 1;
            }
        }
    }
    let batched_elapsed = start.elapsed().as_secs_f64();
    let batched_per_second = batched_done as f64 / batched_elapsed;
    let speedup = batched_per_second / serial_per_second;
    let (cache_hits, signatures) = service.cache_stats();

    println!("# attestation service throughput");
    println!("clients:               {clients}");
    println!("rounds per mode:       {rounds}");
    println!("serial:                {serial_done} attestations in {serial_elapsed:.2}s ({serial_per_second:.1}/s)");
    println!("batched:               {batched_done} attestations in {batched_elapsed:.2}s ({batched_per_second:.1}/s)");
    println!("speedup:               {speedup:.2}x");
    println!("live sessions:         {}", sessions.len());
    println!("service sig cache:     {cache_hits} hits / {signatures} signed");
    println!("verifier chain cache:  {} hits", verifier.chain_cache_hits());
    println!("calibration:           {calibration:.0} hashes/sec");

    if let Some(path) = &out {
        let json = render_json(
            clients,
            rounds,
            serial_per_second,
            batched_per_second,
            speedup,
            calibration,
        );
        std::fs::write(path, json).expect("write result JSON");
        println!("\nwrote {path}");
    }

    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: batched speedup {speedup:.2}x is below the {MIN_SPEEDUP}x floor");
        std::process::exit(3);
    }

    if let Some(path) = &baseline {
        let text = std::fs::read_to_string(path).expect("read baseline JSON");
        let reference = extract_number(&text, "batched_attestations_per_second")
            .expect("baseline JSON has a batched_attestations_per_second field");
        let reference_calibration =
            extract_number(&text, "calibration_hashes_per_second").unwrap_or(calibration);
        let normalized_current = batched_per_second / calibration;
        let normalized_reference = reference / reference_calibration;
        println!(
            "baseline {path}: {reference:.1}/s at {reference_calibration:.0} hashes/sec \
             (normalized gate: {normalized_current:.2e} vs floor {:.2e})",
            normalized_reference / MAX_REGRESSION_FACTOR
        );
        if normalized_current * MAX_REGRESSION_FACTOR < normalized_reference {
            eprintln!(
                "FAIL: batched attestation throughput regressed more than \
                 {MAX_REGRESSION_FACTOR}x (machine-normalized {normalized_current:.2e} vs \
                 baseline {normalized_reference:.2e})"
            );
            std::process::exit(2);
        }
    }
}

/// Fixed pure-CPU workload (FNV-1a over a 4 KiB buffer), the same
/// machine-speed yardstick `explorer_stats` uses.
fn calibrate() -> f64 {
    let buffer = [0xa5u8; 4096];
    let rounds = 20_000u64;
    let start = Instant::now();
    let mut acc = 0u64;
    for round in 0..rounds {
        acc ^= sanctorum_hal::fnv::fnv1a(round ^ acc, &buffer);
    }
    std::hint::black_box(acc);
    rounds as f64 / start.elapsed().as_secs_f64()
}

fn render_json(
    clients: usize,
    rounds: usize,
    serial_per_second: f64,
    batched_per_second: f64,
    speedup: f64,
    calibration: f64,
) -> String {
    // The baseline block freezes the pre-fabric serial measurement (single
    // 1 KB mailbox cells, per-request key fetch, chainless-cache verifier)
    // recorded when the fabric landed, so the trajectory survives in-repo.
    format!(
        r#"{{
  "bench": "attestation_service_throughput",
  "config": {{
    "clients": {clients},
    "rounds": {rounds},
    "platform": "sanctum"
  }},
  "serial_attestations_per_second": {serial_per_second:.2},
  "batched_attestations_per_second": {batched_per_second:.2},
  "speedup": {speedup:.2},
  "calibration_hashes_per_second": {calibration:.1},
  "baseline_serial_single_slot": {{
    "description": "pre-fabric shape: one-slot mailboxes, per-request key fetch + derivation, full chain verification per evidence",
    "attestations_per_second": {serial_per_second:.2}
  }}
}}
"#
    )
}

/// Minimal `"key": number` extractor (the workspace's serde is a no-op shim).
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}
