//! Typestate taint/capability discipline for untrusted inputs.
//!
//! Every physical address, span, or byte buffer that the OS (or any other
//! untrusted caller) hands to the security monitor is **tainted**: nothing
//! about it can be believed until the monitor has proved it. This crate turns
//! that rule into types:
//!
//! * [`Tainted<T>`] wraps an untrusted value. It has **no accessor** — there
//!   is deliberately no way to read the inner value back out, so a tainted
//!   address cannot reach a memory sink by accident.
//! * [`Sanitizer`] (see [`sanitizer`]) is the *only* door out. Backed by an
//!   [`AccessOracle`] (the machine's access-control matrix and DRAM
//!   geometry), it validates a tainted value and mints a [`Checked<T, P>`]
//!   carrying a proof marker `P` ([`ReadAccess`], [`WriteAccess`],
//!   [`RwAccess`]) naming the permission that was actually verified.
//! * Memory sinks ([`read`/`write` span copies, page loads, mail buffer
//!   pushes) accept only `Checked<_>` — bypassing validation no longer
//!   typechecks.
//!
//! `Checked` is not `Clone`: revoking a proof is a move. The batch dispatcher
//! exploits this to encode its revalidation protocol in types — the
//! whole-table proof is dropped the moment an isolation-mutating call
//! executes, and later entries must re-prove their own windows.
//!
//! A proof means exactly what the sanitizer checked — no more. In
//! particular, [`Checked<Span, P>`](Checked) minted by
//! [`Sanitizer::check_span`] with [`SpanPolicy::PLAIN`] proves *caller
//! access and geometry only*, not DRAM containment; containment failures
//! still surface at the sink as memory errors, preserving the monitor's
//! historical error sequencing.
//!
//! # Forgery is a compile error
//!
//! `Tainted` has no accessor method or public field:
//!
//! ```compile_fail
//! use sanctorum_hal::addr::PhysAddr;
//! use sanctorum_trust::Tainted;
//! let t = Tainted::new(PhysAddr::new(0x8000_0000));
//! let _ = t.0; // ERROR: field is private — no way to peel taint off
//! ```
//!
//! ```compile_fail
//! use sanctorum_hal::addr::PhysAddr;
//! use sanctorum_trust::Tainted;
//! let t = Tainted::new(PhysAddr::new(0x8000_0000));
//! let _ = t.get(); // ERROR: no accessor method exists
//! ```
//!
//! And `Checked` cannot be constructed outside the sanitizer module:
//!
//! ```compile_fail
//! use sanctorum_hal::addr::{PhysAddr, Span};
//! use sanctorum_trust::{Checked, RwAccess};
//! let forged: Checked<Span, RwAccess> = Checked {
//!     value: Span::new(PhysAddr::new(0), 64), // ERROR: private fields
//!     proof: RwAccess,
//! };
//! ```
//!
//! ```compile_fail
//! use sanctorum_trust::RwAccess;
//! let _proof = RwAccess(()); // ERROR: proof witnesses are unconstructible
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sanitizer;

pub use sanitizer::{Sanitizer, SpanPolicy};

use core::fmt;
use sanctorum_hal::addr::{PhysAddr, Span, VirtAddr};
use sanctorum_hal::domain::{DomainKind, EnclaveId};
use sanctorum_hal::isolation::RegionId;
use sanctorum_hal::perm::MemPerms;

// ---------------------------------------------------------------------------
// tainted values
// ---------------------------------------------------------------------------

/// An untrusted value as received at the monitor boundary.
///
/// Tainting is always allowed ([`Tainted::new`] is public — wrapping a value
/// only *weakens* what can be done with it); the inner value can never be
/// read back. The only consumers are the [`Sanitizer`] and the register
/// codec ([`RegScalar`]), both inside this crate.
///
/// Taint-preserving transforms ([`Tainted::<PhysAddr>::spanning`],
/// [`Tainted::<PhysAddr>::offset`]) are provided where the boundary needs to
/// combine an untrusted address with an untrusted length — the result is
/// just as tainted as the inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tainted<T>(pub(crate) T);

impl<T> Tainted<T> {
    /// Wraps an untrusted value. Always safe: taint only restricts use.
    pub const fn new(value: T) -> Self {
        Tainted(value)
    }
}

impl<T> From<T> for Tainted<T> {
    fn from(value: T) -> Self {
        Tainted(value)
    }
}

/// Byte-string literals (`b"..."`) arrive as fixed-size array references;
/// admit them directly as tainted byte slices.
impl<'a, const N: usize> From<&'a [u8; N]> for Tainted<&'a [u8]> {
    fn from(value: &'a [u8; N]) -> Self {
        Tainted(value.as_slice())
    }
}

impl Tainted<PhysAddr> {
    /// Combines this tainted base address with an untrusted length into a
    /// tainted span. Pure taint-to-taint geometry — no validation happens.
    #[must_use]
    pub const fn spanning(self, len: u64) -> Tainted<Span> {
        Tainted(Span::new(self.0, len))
    }

    /// Advances the tainted address by `bytes`, staying tainted.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Tainted(self.0.offset(bytes))
    }
}

// ---------------------------------------------------------------------------
// proof markers
// ---------------------------------------------------------------------------

mod sealed {
    /// Prevents foreign crates from inventing new proof markers.
    pub trait Sealed {}
}

/// A permission proof marker minted together with a [`Checked`] value.
///
/// Sealed: only the three markers defined here exist, and their witnesses
/// can only be produced inside this crate (by the sanitizer).
pub trait Proof: sealed::Sealed {
    /// The permission this marker certifies was verified.
    fn perms() -> MemPerms;
    #[doc(hidden)]
    fn witness() -> Self;
}

/// Proof that read access was verified.
#[derive(Debug)]
pub struct ReadAccess(());

/// Proof that write access was verified.
#[derive(Debug)]
pub struct WriteAccess(());

/// Proof that both read and write access were verified.
#[derive(Debug)]
pub struct RwAccess(());

impl sealed::Sealed for ReadAccess {}
impl sealed::Sealed for WriteAccess {}
impl sealed::Sealed for RwAccess {}

impl Proof for ReadAccess {
    fn perms() -> MemPerms {
        MemPerms::READ
    }
    fn witness() -> Self {
        ReadAccess(())
    }
}

impl Proof for WriteAccess {
    fn perms() -> MemPerms {
        MemPerms::WRITE
    }
    fn witness() -> Self {
        WriteAccess(())
    }
}

impl Proof for RwAccess {
    fn perms() -> MemPerms {
        MemPerms::RW
    }
    fn witness() -> Self {
        RwAccess(())
    }
}

/// Proofs that permit reading through the checked value.
pub trait CanRead: Proof {}
/// Proofs that permit writing through the checked value.
pub trait CanWrite: Proof {}

impl CanRead for ReadAccess {}
impl CanRead for RwAccess {}
impl CanWrite for WriteAccess {}
impl CanWrite for RwAccess {}

// ---------------------------------------------------------------------------
// checked values
// ---------------------------------------------------------------------------

/// A value the [`Sanitizer`] has validated, carrying proof marker `P`.
///
/// Construction is confined to the sanitizer module (private fields,
/// enforced a second time by `cargo xtask lint`). Deliberately **not
/// `Clone`**: a proof is revoked by moving it away, which is how the batch
/// dispatcher expresses "this table proof died when an isolation-mutating
/// call executed".
#[derive(Debug)]
pub struct Checked<T, P: Proof> {
    pub(crate) value: T,
    #[allow(dead_code)] // the proof *is* the payload; it is never read
    pub(crate) proof: P,
}

impl<T: Copy, P: Proof> Checked<T, P> {
    /// Reads the validated value. Available only once a proof exists.
    pub fn get(&self) -> T {
        self.value
    }
}

impl<'a, P: Proof> Checked<&'a [u8], P> {
    /// The validated byte slice.
    pub fn bytes(&self) -> &'a [u8] {
        self.value
    }
}

/// A physical address proved page-aligned, but nothing else yet.
///
/// Intermediate typestate for `load_page`, whose historical error ordering
/// checks alignment several steps before access: alignment is proved early
/// (jointly with the virtual address), access is proved late, and only
/// [`Sanitizer::check_page`] can upgrade this into a full [`Checked`] page.
#[derive(Debug, Clone, Copy)]
pub struct PageAligned(pub(crate) PhysAddr);

// ---------------------------------------------------------------------------
// errors and the oracle
// ---------------------------------------------------------------------------

/// Why the sanitizer refused to mint a proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustError {
    /// The span covers zero bytes (use [`Sanitizer::check_empty`] when a
    /// vacuous operation is genuinely intended).
    Empty,
    /// The base address violates the required alignment.
    Unaligned {
        /// The alignment that was required, in bytes.
        required: u64,
    },
    /// The span is not fully contained in populated DRAM.
    OutOfDram,
    /// The caller's domain is not allowed the requested access.
    Denied,
    /// The byte buffer exceeds the stated maximum length.
    TooLong {
        /// The maximum length that was allowed, in bytes.
        max: usize,
    },
}

impl fmt::Display for TrustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrustError::Empty => write!(f, "zero-length span"),
            TrustError::Unaligned { required } => {
                write!(f, "base address not {required}-byte aligned")
            }
            TrustError::OutOfDram => write!(f, "span not contained in populated DRAM"),
            TrustError::Denied => write!(f, "caller lacks the required access"),
            TrustError::TooLong { max } => write!(f, "buffer exceeds {max} bytes"),
        }
    }
}

/// What the sanitizer consults to prove things: the machine's access-control
/// matrix and DRAM geometry.
///
/// Implemented by `Machine`; test code supplies mock oracles.
pub trait AccessOracle {
    /// Returns `true` if `domain` may access every byte of `span` with
    /// `perms`. Must treat an empty span as trivially allowed.
    fn allows_span(&self, domain: DomainKind, span: Span, perms: MemPerms) -> bool;

    /// Returns `true` if `span` lies entirely within populated DRAM.
    /// An empty span is contained iff its base address is within or exactly
    /// at the end of DRAM (matching `PhysMemory::contains`).
    fn dram_contains(&self, span: Span) -> bool;
}

// ---------------------------------------------------------------------------
// register scalar codec
// ---------------------------------------------------------------------------

/// Types that travel in a single argument register.
///
/// The call registry derives `SmCall::encode` / `SmCall::decode` from the
/// field types of each call; every field type implements this codec once, so
/// no per-call marshalling code exists anywhere. The codec lives in this
/// crate (rather than `core::api`) because `Tainted` register values must be
/// encodable without exposing an accessor: the blanket impl below is the
/// only code outside the sanitizer that touches a tainted payload, and all
/// it may do is move it between registers — taint in, taint out.
pub trait RegScalar: Sized {
    /// Encodes the value into a register word.
    fn to_reg(&self) -> u64;
    /// Decodes the value from a register word.
    fn from_reg(raw: u64) -> Self;
}

impl RegScalar for u64 {
    fn to_reg(&self) -> u64 {
        *self
    }
    fn from_reg(raw: u64) -> Self {
        raw
    }
}

impl RegScalar for VirtAddr {
    fn to_reg(&self) -> u64 {
        self.as_u64()
    }
    fn from_reg(raw: u64) -> Self {
        VirtAddr::new(raw)
    }
}

impl RegScalar for PhysAddr {
    fn to_reg(&self) -> u64 {
        self.as_u64()
    }
    fn from_reg(raw: u64) -> Self {
        PhysAddr::new(raw)
    }
}

impl RegScalar for EnclaveId {
    fn to_reg(&self) -> u64 {
        self.as_u64()
    }
    fn from_reg(raw: u64) -> Self {
        EnclaveId::new(raw)
    }
}

impl RegScalar for RegionId {
    fn to_reg(&self) -> u64 {
        self.0 as u64
    }
    fn from_reg(raw: u64) -> Self {
        RegionId::new(raw as u32)
    }
}

impl RegScalar for MemPerms {
    fn to_reg(&self) -> u64 {
        self.bits() as u64
    }
    fn from_reg(raw: u64) -> Self {
        MemPerms::from_bits(raw as u8)
    }
}

/// Register values that were tainted stay tainted across a register
/// round-trip; decoding a register word always (re-)taints it.
impl<T: RegScalar> RegScalar for Tainted<T> {
    fn to_reg(&self) -> u64 {
        self.0.to_reg()
    }
    fn from_reg(raw: u64) -> Self {
        Tainted(T::from_reg(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tainted_round_trips_through_registers() {
        let t: Tainted<PhysAddr> = Tainted::new(PhysAddr::new(0x8000_1000));
        let raw = t.to_reg();
        assert_eq!(raw, 0x8000_1000);
        let back = <Tainted<PhysAddr>>::from_reg(raw);
        assert_eq!(back, t);
    }

    #[test]
    fn byte_literals_taint_as_slices() {
        let t: Tainted<&[u8]> = b"hello".into();
        let u: Tainted<&[u8]> = Tainted::new(b"hello".as_slice());
        assert_eq!(t, u);
    }

    #[test]
    fn proof_markers_name_their_permission() {
        assert_eq!(ReadAccess::perms(), MemPerms::READ);
        assert_eq!(WriteAccess::perms(), MemPerms::WRITE);
        assert_eq!(RwAccess::perms(), MemPerms::RW);
    }
}
