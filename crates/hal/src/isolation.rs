//! The isolation-primitive interface the security monitor is written against.
//!
//! Paper Section IV-B requires the hardware platform to provide: memory
//! isolation across protection domains (IV-B1), isolated computation for
//! shared micro-architectural resources (IV-B2), and exclusive elevated
//! privilege for the SM (IV-B3). The two platform backends —
//! `sanctorum-sanctum` (DRAM regions + LLC partitioning) and
//! `sanctorum-keystone` (RISC-V PMP) — implement this trait over the simulated
//! machine, so the same monitor runs unchanged on both.

use crate::addr::{PhysAddr, PhysPageNum};
use crate::cycles::Cycles;
use crate::domain::{CoreId, DomainKind};
use crate::perm::MemPerms;
use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of an isolable memory unit on the platform.
///
/// On the Sanctum backend this is a DRAM region index; on the Keystone
/// backend it is a PMP-backed physical range handle.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RegionId(pub u32);

impl RegionId {
    /// Creates a region identifier.
    pub const fn new(id: u32) -> Self {
        Self(id)
    }

    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// Which shared state a flush operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlushKind {
    /// Architected core state: registers, CSRs relevant to the old domain.
    CoreState,
    /// Private (L1) caches and branch predictor state of a core.
    PrivateCaches,
    /// The shared last-level-cache partition associated with a memory unit.
    SharedCachePartition,
    /// TLB entries referring to a re-allocated memory unit.
    Tlb,
}

/// Errors raised by an isolation backend.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IsolationError {
    /// The requested region does not exist on this platform.
    UnknownRegion(RegionId),
    /// The platform ran out of isolation resources (e.g. PMP entries).
    ResourceExhausted {
        /// Human-readable name of the exhausted resource ("pmp entries", ...).
        resource: &'static str,
    },
    /// The requested physical range is not representable by the platform's
    /// isolation primitive (alignment / size restrictions).
    UnsupportedRange {
        /// Start of the rejected range.
        base: PhysAddr,
        /// Length of the rejected range in bytes.
        len: u64,
    },
    /// The core id is out of range for this machine.
    UnknownCore(CoreId),
    /// The backend operation failed transiently (a flaky device, an injected
    /// fault): the request was *not* applied and may be retried. The monitor
    /// surfaces this as `SmError::Again` so callers back off and retry
    /// instead of wedging.
    TransientFault,
}

impl fmt::Display for IsolationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsolationError::UnknownRegion(r) => write!(f, "unknown isolation {r}"),
            IsolationError::ResourceExhausted { resource } => {
                write!(f, "platform isolation resource exhausted: {resource}")
            }
            IsolationError::UnsupportedRange { base, len } => {
                write!(f, "unsupported isolation range at {base} (+{len:#x} bytes)")
            }
            IsolationError::UnknownCore(c) => write!(f, "unknown {c}"),
            IsolationError::TransientFault => {
                write!(f, "transient isolation-backend fault (retry)")
            }
        }
    }
}

impl std::error::Error for IsolationError {}

/// Description of one isolable memory unit exposed by the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionInfo {
    /// The unit's identifier.
    pub id: RegionId,
    /// Base physical address.
    pub base: PhysAddr,
    /// Length in bytes.
    pub len: u64,
    /// Whether the platform also partitions the shared cache for this unit.
    pub cache_isolated: bool,
}

impl RegionInfo {
    /// Returns the first physical page of the unit.
    pub fn first_page(&self) -> PhysPageNum {
        self.base.page_number()
    }

    /// Returns the number of 4 KiB pages covered by the unit.
    pub fn page_count(&self) -> u64 {
        self.len / crate::addr::PAGE_SIZE as u64
    }

    /// Returns `true` if `addr` lies inside the unit.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr.as_u64() >= self.base.as_u64() && addr.as_u64() < self.base.as_u64() + self.len
    }
}

/// Declared capacity limits of an isolation platform.
///
/// The differential explorer compares the OS-visible behaviour of the same
/// call trace on two backends; behaviour is required to agree *except* where
/// a backend has declared, ahead of time, that its isolation primitive is
/// capacity-limited (paper Table 2: Keystone's PMP entry count bounds the
/// number of concurrently protected ranges, Sanctum's region array does not).
/// A status divergence is only acceptable when the failing side declared the
/// tighter capacity here — anything else is a real divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformCapacity {
    /// Maximum number of memory units that can be isolated (owned by the SM
    /// or an enclave) at the same time; `None` means every unit the platform
    /// enumerates can be protected concurrently.
    pub max_isolated_units: Option<usize>,
}

impl PlatformCapacity {
    /// A platform with no declared capacity limit.
    pub const UNLIMITED: PlatformCapacity = PlatformCapacity {
        max_isolated_units: None,
    };

    /// Returns `true` if this platform declares a tighter isolation-unit
    /// limit than `other` (and so may legitimately fail an allocation the
    /// other platform accepts).
    pub fn tighter_than(&self, other: &PlatformCapacity) -> bool {
        match (self.max_isolated_units, other.max_isolated_units) {
            (Some(mine), Some(theirs)) => mine < theirs,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }
}

/// One region mutation inside a batched backend flush
/// ([`IsolationBackend::apply_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionOp {
    /// Assign ownership of `region` to `domain` with `perms` (the batched
    /// form of [`IsolationBackend::assign_region`]).
    Assign {
        /// The memory unit being reassigned.
        region: RegionId,
        /// The domain receiving ownership.
        domain: DomainKind,
        /// The owner's permissions.
        perms: MemPerms,
    },
    /// Block or unblock untrusted DMA to `region` (the batched form of
    /// [`IsolationBackend::set_dma_blocked`]).
    SetDmaBlocked {
        /// The memory unit whose DMA filter changes.
        region: RegionId,
        /// Whether untrusted DMA is blocked.
        blocked: bool,
    },
}

/// The isolation primitive contract required by the security monitor.
///
/// All methods return the architectural [`Cycles`] cost of the operation so
/// the monitor can account for the cost of enforcement (flushes, shootdowns,
/// PMP writes) in its own bookkeeping — this cost is what the Fig. 4 / Table 2
/// benchmarks report.
pub trait IsolationBackend {
    /// Human-readable platform name ("sanctum", "keystone").
    fn platform_name(&self) -> &'static str;

    /// Declares the platform's capacity limits (see [`PlatformCapacity`]).
    /// The default declares no limit; capacity-bound platforms (PMP-based
    /// isolation) override this so differential harnesses can tell a
    /// declared-capacity failure from a behavioural divergence.
    fn capacity(&self) -> PlatformCapacity {
        PlatformCapacity::UNLIMITED
    }

    /// Enumerates the isolable memory units of the platform.
    fn regions(&self) -> Vec<RegionInfo>;

    /// Returns the unit containing `addr`, if any.
    fn region_of(&self, addr: PhysAddr) -> Option<RegionId>;

    /// Assigns ownership of a memory unit to `domain` with permissions
    /// `perms` for that domain, revoking all other domains' access.
    ///
    /// # Errors
    ///
    /// Returns an error if the region is unknown or the platform cannot
    /// express the assignment (e.g. PMP exhaustion on Keystone).
    fn assign_region(
        &mut self,
        region: RegionId,
        domain: DomainKind,
        perms: MemPerms,
    ) -> Result<Cycles, IsolationError>;

    /// Returns the domain currently owning a memory unit.
    fn region_owner(&self, region: RegionId) -> Result<DomainKind, IsolationError>;

    /// Checks whether `domain` may access `addr` with `perms` under the
    /// current hardware configuration. Used by the simulated machine on every
    /// memory access and by tests asserting non-interference.
    fn check_access(&self, domain: DomainKind, addr: PhysAddr, perms: MemPerms) -> bool;

    /// Flushes the given kind of shared state, returning its cost.
    ///
    /// `core` identifies the affected hart for core-local flushes and is
    /// ignored for shared structures.
    ///
    /// # Errors
    ///
    /// Returns an error if the core is unknown to the platform.
    fn flush(&mut self, core: CoreId, kind: FlushKind) -> Result<Cycles, IsolationError>;

    /// Performs a TLB shootdown for a re-allocated memory unit across all
    /// harts, returning its cost.
    ///
    /// # Errors
    ///
    /// Returns an error if the region is unknown.
    fn tlb_shootdown(&mut self, region: RegionId) -> Result<Cycles, IsolationError>;

    /// Evicts any cached data belonging to a re-allocated memory unit from
    /// the shared cache, returning its cost. On a platform with a partitioned
    /// last-level cache (Sanctum) only that unit's partition is flushed; on a
    /// platform with a shared cache (Keystone) the whole cache must be
    /// flushed.
    ///
    /// # Errors
    ///
    /// Returns an error if the region is unknown.
    fn flush_region_cache(&mut self, region: RegionId) -> Result<Cycles, IsolationError>;

    /// Whether DMA by untrusted devices is currently blocked from `region`.
    fn dma_blocked(&self, region: RegionId) -> Result<bool, IsolationError>;

    /// Blocks or unblocks DMA access to a memory unit.
    ///
    /// # Errors
    ///
    /// Returns an error if the region is unknown.
    fn set_dma_blocked(&mut self, region: RegionId, blocked: bool)
        -> Result<Cycles, IsolationError>;

    /// Applies a batch of region mutations in one backend critical section,
    /// returning their combined cost.
    ///
    /// The batch is **all-or-nothing**: implementations must validate every
    /// operation (geometry, capacity — e.g. net PMP-entry demand of the whole
    /// batch) *before* mutating any state, so a rejected batch leaves the
    /// hardware configuration untouched and callers need no rollback.
    /// Platforms override this to amortize per-flush overhead (one
    /// TLB-shootdown round for the batch instead of one per region); the
    /// default implementation is only the semantic reference, applying the
    /// operations sequentially, and is *not* all-or-nothing under every
    /// failure (a mid-batch unknown-region error leaves earlier ops applied)
    /// — real backends must do the upfront validation.
    ///
    /// # Errors
    ///
    /// Returns an error if any operation in the batch is invalid or the
    /// platform cannot express the combined result.
    fn apply_batch(&mut self, ops: &[RegionOp]) -> Result<Cycles, IsolationError> {
        let mut total = Cycles::ZERO;
        for op in ops {
            total += match *op {
                RegionOp::Assign {
                    region,
                    domain,
                    perms,
                } => self.assign_region(region, domain, perms)?,
                RegionOp::SetDmaBlocked { region, blocked } => {
                    self.set_dma_blocked(region, blocked)?
                }
            };
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_info_geometry() {
        let info = RegionInfo {
            id: RegionId::new(3),
            base: PhysAddr::new(0x10_0000),
            len: 0x8000,
            cache_isolated: true,
        };
        assert_eq!(info.page_count(), 8);
        assert!(info.contains(PhysAddr::new(0x10_7fff)));
        assert!(!info.contains(PhysAddr::new(0x10_8000)));
        assert!(!info.contains(PhysAddr::new(0xf_ffff)));
        assert_eq!(info.first_page().index(), 0x100);
    }

    #[test]
    fn error_display() {
        let e = IsolationError::ResourceExhausted { resource: "pmp entries" };
        assert_eq!(format!("{e}"), "platform isolation resource exhausted: pmp entries");
        let e = IsolationError::UnknownRegion(RegionId::new(9));
        assert!(format!("{e}").contains("region9"));
    }

    #[test]
    fn capacity_tightness_ordering() {
        let unlimited = PlatformCapacity::UNLIMITED;
        let eight = PlatformCapacity { max_isolated_units: Some(8) };
        let three = PlatformCapacity { max_isolated_units: Some(3) };
        assert!(three.tighter_than(&eight));
        assert!(three.tighter_than(&unlimited));
        assert!(eight.tighter_than(&unlimited));
        assert!(!unlimited.tighter_than(&three));
        assert!(!eight.tighter_than(&three));
        assert!(!three.tighter_than(&three));
    }

    #[test]
    fn region_id_display_and_index() {
        assert_eq!(RegionId::new(5).index(), 5);
        assert_eq!(format!("{}", RegionId::new(5)), "region5");
    }
}
