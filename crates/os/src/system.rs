//! System bring-up: machine + platform backend + secure-booted monitor.

use sanctorum_core::boot::secure_boot;
use sanctorum_core::monitor::{SecurityMonitor, SmConfig};
use sanctorum_keystone::KeystoneBackend;
use sanctorum_machine::{Machine, MachineConfig};
use sanctorum_sanctum::SanctumBackend;
use std::sync::Arc;

/// Which platform backend the system uses (paper Section VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// MIT Sanctum: fixed-size DRAM regions, partitioned LLC.
    Sanctum,
    /// Keystone: PMP-protected ranges, shared LLC.
    Keystone,
}

impl PlatformKind {
    /// Both platforms, for parameter sweeps.
    pub const ALL: [PlatformKind; 2] = [PlatformKind::Sanctum, PlatformKind::Keystone];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PlatformKind::Sanctum => "sanctum",
            PlatformKind::Keystone => "keystone",
        }
    }
}

/// A booted system: the shared machine and its security monitor.
#[derive(Debug)]
pub struct System {
    /// The simulated machine.
    pub machine: Arc<Machine>,
    /// The security monitor, ready to accept API calls.
    pub monitor: Arc<SecurityMonitor>,
    /// Which platform backend is in use.
    pub platform: PlatformKind,
}

/// The SM "binary" measured at secure boot (a stand-in for the monitor's
/// text; its exact contents only need to be stable).
pub const SM_BINARY: &[u8] = b"sanctorum security monitor reproduction v0.1.0";

impl System {
    /// Boots a system on `platform` with the given machine and monitor
    /// configuration.
    pub fn boot(platform: PlatformKind, machine_config: MachineConfig, sm_config: SmConfig) -> Self {
        let machine = Arc::new(Machine::new(machine_config));
        let identity = secure_boot(machine.root_of_trust(), SM_BINARY);
        let backend: Box<dyn sanctorum_hal::isolation::IsolationBackend + Send> = match platform {
            PlatformKind::Sanctum => Box::new(SanctumBackend::new(Arc::clone(&machine))),
            PlatformKind::Keystone => Box::new(KeystoneBackend::new(Arc::clone(&machine))),
        };
        let monitor = Arc::new(SecurityMonitor::new(
            Arc::clone(&machine),
            backend,
            identity,
            sm_config,
        ));
        Self {
            machine,
            monitor,
            platform,
        }
    }

    /// Boots a small system with default monitor configuration — the common
    /// starting point for tests and examples.
    pub fn boot_small(platform: PlatformKind) -> Self {
        Self::boot(platform, MachineConfig::small(), SmConfig::default())
    }

    /// Boots the larger benchmark configuration.
    pub fn boot_default(platform: PlatformKind) -> Self {
        Self::boot(platform, MachineConfig::default_config(), SmConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boots_on_both_platforms() {
        for platform in PlatformKind::ALL {
            let system = System::boot_small(platform);
            assert_eq!(system.monitor.platform_name(), platform.name());
            assert_eq!(system.machine.num_harts(), 2);
            // Secure boot produced a verifiable SM certificate.
            assert!(system.monitor.identity().sm_certificate.verify());
        }
    }

    #[test]
    fn same_device_same_keys_across_reboot() {
        let a = System::boot_small(PlatformKind::Sanctum);
        let b = System::boot_small(PlatformKind::Sanctum);
        assert_eq!(
            a.monitor.identity().attestation_keypair.public().to_bytes(),
            b.monitor.identity().attestation_keypair.public().to_bytes()
        );
    }
}
