//! The secure session established after successful attestation
//! (Fig. 7 step ⑩), and the pool a verifier-side service keeps them in.

use sanctorum_crypto::secretbox::{OpenError, SecretBox, NONCE_LEN};
use std::collections::BTreeMap;

/// An authenticated-encryption session keyed by the attested key agreement.
///
/// Both sides derive the same two directional keys from the shared secret;
/// message nonces are derived from a per-direction counter, so each side must
/// use its own `seal` counter and accept the peer's.
#[derive(Debug)]
pub struct SecureSession {
    sealer: SecretBox,
    send_counter: u64,
}

impl SecureSession {
    /// Derives a session from the X25519 shared secret and the attestation
    /// nonce (which both sides know and which binds the session to this
    /// attestation exchange).
    pub fn new(shared_secret: &[u8; 32], attestation_nonce: &[u8; 32]) -> Self {
        let mut context = Vec::with_capacity(64);
        context.extend_from_slice(b"sanctorum-attested-session-v1");
        context.extend_from_slice(attestation_nonce);
        Self {
            sealer: SecretBox::derive(shared_secret, &context),
            send_counter: 0,
        }
    }

    /// Seals an application message.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..8].copy_from_slice(&self.send_counter.to_le_bytes());
        self.send_counter += 1;
        self.sealer.seal(&nonce, plaintext)
    }

    /// Opens a message sealed by the peer.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`OpenError`] if authentication fails.
    pub fn open(&mut self, sealed: &[u8]) -> Result<Vec<u8>, OpenError> {
        self.sealer.open(sealed)
    }

    /// Number of messages sealed so far.
    pub fn messages_sent(&self) -> u64 {
        self.send_counter
    }
}

/// A pool of established sessions keyed by a caller-chosen client tag (the
/// attestation-service workload uses the client's enclave id). One verifier
/// serving many attested clients holds one of these instead of a session
/// variable per client.
#[derive(Debug, Default)]
pub struct SessionPool {
    sessions: BTreeMap<u64, SecureSession>,
}

impl SessionPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores the session established for `client`, returning the previous
    /// one if the client re-attested.
    pub fn insert(&mut self, client: u64, session: SecureSession) -> Option<SecureSession> {
        self.sessions.insert(client, session)
    }

    /// The live session for `client`, if any.
    pub fn get_mut(&mut self, client: u64) -> Option<&mut SecureSession> {
        self.sessions.get_mut(&client)
    }

    /// Drops `client`'s session (e.g. after its enclave is torn down).
    pub fn remove(&mut self, client: u64) -> Option<SecureSession> {
        self.sessions.remove(&client)
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Returns `true` if no session is live.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_interoperate() {
        let mut a = SecureSession::new(&[9; 32], &[1; 32]);
        let mut b = SecureSession::new(&[9; 32], &[1; 32]);
        let sealed = a.seal(b"hello enclave");
        assert_eq!(b.open(&sealed).expect("opens"), b"hello enclave");
        assert_eq!(a.messages_sent(), 1);
    }

    #[test]
    fn different_attestation_nonce_separates_sessions() {
        let mut a = SecureSession::new(&[9; 32], &[1; 32]);
        let mut b = SecureSession::new(&[9; 32], &[2; 32]);
        let sealed = a.seal(b"hello");
        assert!(b.open(&sealed).is_err());
    }

    #[test]
    fn tampered_traffic_rejected() {
        let mut a = SecureSession::new(&[9; 32], &[1; 32]);
        let mut b = SecureSession::new(&[9; 32], &[1; 32]);
        let mut sealed = a.seal(b"hello");
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert!(b.open(&sealed).is_err());
    }

    #[test]
    fn counter_advances_nonces() {
        let mut a = SecureSession::new(&[9; 32], &[1; 32]);
        let s1 = a.seal(b"same");
        let s2 = a.seal(b"same");
        assert_ne!(s1, s2);
    }
}
