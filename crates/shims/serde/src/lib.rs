//! Minimal stand-in for the `serde` facade.
//!
//! The workspace only *derives* `Serialize` / `Deserialize` on plain data
//! types; nothing in the tree drives an actual serde serializer. This shim
//! provides marker traits with blanket impls plus the no-op derive macros, so
//! the source stays byte-for-byte compatible with the real crate for the
//! subset in use. If a future PR needs real serialization, replace the shims
//! with the genuine crates (the manifests only need the path entries in
//! `[workspace.dependencies]` swapped for versions).

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize` (derive expands to nothing; every
/// type trivially satisfies it).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (same contract as [`Serialize`]).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
