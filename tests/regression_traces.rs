//! Replays the committed regression corpus (`tests/regressions/*.trace`).
//!
//! Each trace pins one historical monitor bug in the explorer's text trace
//! format (see `sanctorum_explorer::trace::parse_trace`) with a provenance
//! comment in the file itself. Replay runs the differential world pair —
//! Sanctum and Keystone in lockstep — with the full invariant kernel on
//! every step, so a regression of any pinned bug fails here with the exact
//! violating step. The corpus is also the storage format the model
//! checker's counterexamples are reported in: a future violation found by
//! `sanctorum-modelcheck` lands here as one more file.

use sanctorum_explorer::crash::crash_machine_config;
use sanctorum_explorer::trace::parse_trace;
use sanctorum_explorer::{explorer_machine_config, Explorer, ExplorerConfig};
use sanctorum_machine::MachineConfig;

/// Parses `tests/regressions/<name>` and replays it under `machine`,
/// asserting the trace is non-trivial and violation-free.
fn replay_clean(name: &str, machine: MachineConfig) {
    let path = format!(
        "{}/tests/regressions/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|err| panic!("reading {path}: {err}"));
    let trace = parse_trace(&text).unwrap_or_else(|err| panic!("{name}: {err}"));
    assert!(trace.len() >= 5, "{name}: corpus trace is implausibly short");
    let explorer = Explorer::new(ExplorerConfig { machine, ..ExplorerConfig::default() });
    if let Some((step, violation)) = explorer.probe(&trace) {
        panic!("{name}: regressed at step {step}: {violation}");
    }
}

#[test]
fn nonatomic_delete_under_eid_reuse_stays_fixed() {
    replay_clean("nonatomic_delete.trace", explorer_machine_config());
}

#[test]
fn pmp_exhaustion_strands_no_regions() {
    // Clamp the PMP budget so the trace's build burst actually exhausts it
    // on the Keystone-style backend (the default budget covers every
    // region and the bug path would never execute).
    let machine = MachineConfig { pmp_entries: 4, ..explorer_machine_config() };
    replay_clean("pmp_exhaustion.trace", machine);
}

#[test]
fn recycled_id_mail_routing_stays_fixed() {
    replay_clean("recycled_id_mail.trace", explorer_machine_config());
}

#[test]
fn crash_midway_through_delete_recovers_and_stays_fixed() {
    // Fault-point crossings are platform-invariant, so the `crashed` op's
    // differential detail words (replayed count, crash fired) agree across
    // the pair and the trace replays through the same differential harness
    // as the rest of the corpus.
    replay_clean("crash_midway_delete.trace", crash_machine_config());
}

#[test]
fn crash_mid_scrub_leaves_region_blocked_and_stays_fixed() {
    replay_clean("crash_mid_scrub_clean.trace", crash_machine_config());
}

#[test]
fn grant_delete_toctou_witness_stays_fixed() {
    // The model checker's small world: 2 MiB in 512 KiB regions, so the
    // region indices named in the trace's comments are literal.
    let machine = MachineConfig {
        memory_size: 2 * 1024 * 1024,
        dram_region_size: 512 * 1024,
        ..MachineConfig::small()
    };
    replay_clean("grant_delete_toctou.trace", machine);
}

#[test]
fn grant_batch_flush_interleaved_with_delete_stays_fixed() {
    // Same small world as the TOCTOU witness: the batched backend flush a
    // grant now issues (one apply_batch critical section for Assign +
    // SetDmaBlocked) must not reopen the grant-vs-delete window PR 5
    // closed, and the call-level batch op's flush must see consistent
    // ownership immediately after the racing delete's sweep.
    let machine = MachineConfig {
        memory_size: 2 * 1024 * 1024,
        dram_region_size: 512 * 1024,
        ..MachineConfig::small()
    };
    replay_clean("grant_batch_delete.trace", machine);
}
