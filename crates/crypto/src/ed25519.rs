//! Ed25519-SHA3 signatures.
//!
//! Structure and curve follow RFC 8032; the internal hash is SHA3-512 instead
//! of SHA-512 (see the crate-level documentation for the rationale). The SM's
//! attestation key pair, the manufacturer PKI of `sanctorum-verifier` and the
//! signing enclave all use this scheme.

use crate::field::FieldElement;
use crate::scalar::Scalar;
use crate::sha3::Sha3_512;
use serde::{Deserialize, Serialize};

/// Length of a public key in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;
/// Length of a secret key seed in bytes.
pub const SECRET_KEY_LEN: usize = 32;
/// Length of a signature in bytes.
pub const SIGNATURE_LEN: usize = 64;

/// A point on the Ed25519 curve in extended twisted-Edwards coordinates.
#[derive(Debug, Clone, Copy)]
pub struct EdwardsPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
    t: FieldElement,
}

/// Returns the curve constant `d = -121665/121666 mod p`.
fn constant_d() -> FieldElement {
    -(FieldElement::from_u64(121665) * FieldElement::from_u64(121666).invert())
}

impl EdwardsPoint {
    /// The identity (neutral) element.
    pub fn identity() -> Self {
        EdwardsPoint {
            x: FieldElement::ZERO,
            y: FieldElement::ONE,
            z: FieldElement::ONE,
            t: FieldElement::ZERO,
        }
    }

    /// The standard base point `B` (y = 4/5, x recovered with even sign).
    pub fn basepoint() -> Self {
        let y = FieldElement::from_u64(4) * FieldElement::from_u64(5).invert();
        let mut compressed = y.to_bytes();
        compressed[31] &= 0x7f; // sign bit 0: the canonical Bx is even
        Self::decompress(&compressed).expect("base point decompression cannot fail")
    }

    /// Unified point addition (valid for doubling as well, since `a = -1` is
    /// square and `d` is non-square, making the Edwards addition law
    /// complete).
    #[must_use]
    pub fn add(&self, other: &EdwardsPoint) -> EdwardsPoint {
        let d2 = constant_d() + constant_d();
        let a = (self.y - self.x) * (other.y - other.x);
        let b = (self.y + self.x) * (other.y + other.x);
        let c = self.t * d2 * other.t;
        let d = self.z * other.z + self.z * other.z;
        let e = b - a;
        let f = d - c;
        let g = d + c;
        let h = b + a;
        EdwardsPoint {
            x: e * f,
            y: g * h,
            t: e * h,
            z: f * g,
        }
    }

    /// Point doubling (delegates to the unified addition).
    #[must_use]
    pub fn double(&self) -> EdwardsPoint {
        self.add(self)
    }

    /// Scalar multiplication by double-and-add over the scalar's bits.
    #[must_use]
    pub fn scalar_mul(&self, scalar: &Scalar) -> EdwardsPoint {
        let mut result = EdwardsPoint::identity();
        for bit in (0..256).rev() {
            result = result.double();
            if scalar.bit(bit) == 1 {
                result = result.add(self);
            }
        }
        result
    }

    /// Computes `s·B` for the fixed base point.
    pub fn basepoint_mul(scalar: &Scalar) -> EdwardsPoint {
        Self::basepoint().scalar_mul(scalar)
    }

    /// Compresses the point to its 32-byte encoding (y with the sign of x in
    /// the top bit).
    pub fn compress(&self) -> [u8; 32] {
        let z_inv = self.z.invert();
        let x = self.x * z_inv;
        let y = self.y * z_inv;
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompresses a 32-byte encoding into a point, if it is valid.
    pub fn decompress(bytes: &[u8; 32]) -> Option<EdwardsPoint> {
        let sign = (bytes[31] >> 7) & 1;
        let mut y_bytes = *bytes;
        y_bytes[31] &= 0x7f;
        let y = FieldElement::from_bytes(&y_bytes);

        // x^2 = (y^2 - 1) / (d y^2 + 1)
        let y2 = y.square();
        let u = y2 - FieldElement::ONE;
        let v = constant_d() * y2 + FieldElement::ONE;

        // Candidate root: x = u * v^3 * (u * v^7)^((p-5)/8).
        let v3 = v.square() * v;
        let v7 = v3.square() * v;
        let mut x = u * v3 * (u * v7).pow_p58();

        let vx2 = v * x.square();
        if vx2 == u {
            // x is already a square root.
        } else if vx2 == -u {
            x = x * FieldElement::sqrt_m1();
        } else {
            return None;
        }

        if x.is_zero() && sign == 1 {
            // -0 is not a valid encoding.
            return None;
        }
        if (x.is_negative() as u8) != sign {
            x = -x;
        }

        Some(EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x * y,
        })
    }

    /// Returns `true` if both points represent the same affine point.
    pub fn equals(&self, other: &EdwardsPoint) -> bool {
        // Cross-multiply to avoid inversions: X1*Z2 == X2*Z1 and Y1*Z2 == Y2*Z1.
        (self.x * other.z).ct_equals(&(other.x * self.z))
            && (self.y * other.z).ct_equals(&(other.y * self.z))
    }
}

impl PartialEq for EdwardsPoint {
    fn eq(&self, other: &Self) -> bool {
        self.equals(other)
    }
}

impl Eq for EdwardsPoint {}

/// An Ed25519-SHA3 secret key (the 32-byte seed).
#[derive(Clone, Serialize, Deserialize)]
pub struct SecretKey {
    seed: [u8; SECRET_KEY_LEN],
}

impl core::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SecretKey(<redacted>)")
    }
}

/// An Ed25519-SHA3 public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    bytes: [u8; PUBLIC_KEY_LEN],
}

/// An Ed25519-SHA3 signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    r: [u8; 32],
    s: [u8; 32],
}

/// A key pair (seed plus cached public key).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Keypair {
    secret: SecretKey,
    public: PublicKey,
}

fn clamp(mut scalar_bytes: [u8; 32]) -> [u8; 32] {
    scalar_bytes[0] &= 248;
    scalar_bytes[31] &= 127;
    scalar_bytes[31] |= 64;
    scalar_bytes
}

impl SecretKey {
    /// Creates a secret key from a 32-byte seed.
    pub fn from_seed(seed: [u8; SECRET_KEY_LEN]) -> Self {
        Self { seed }
    }

    /// Returns the seed bytes.
    pub fn seed(&self) -> &[u8; SECRET_KEY_LEN] {
        &self.seed
    }

    fn expand(&self) -> (Scalar, [u8; 32]) {
        let h = Sha3_512::digest(&self.seed);
        let mut scalar_bytes = [0u8; 32];
        scalar_bytes.copy_from_slice(&h[..32]);
        let scalar_bytes = clamp(scalar_bytes);
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&h[32..]);
        (Scalar::from_unreduced_bytes(&scalar_bytes), prefix)
    }

    /// Derives the corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        let (a, _) = self.expand();
        PublicKey {
            bytes: EdwardsPoint::basepoint_mul(&a).compress(),
        }
    }
}

impl PublicKey {
    /// Constructs a public key from its 32-byte encoding.
    ///
    /// # Errors
    ///
    /// Returns `None` if the bytes do not decode to a curve point.
    pub fn from_bytes(bytes: [u8; PUBLIC_KEY_LEN]) -> Option<Self> {
        EdwardsPoint::decompress(&bytes).map(|_| PublicKey { bytes })
    }

    /// Returns the 32-byte encoding.
    pub fn to_bytes(&self) -> [u8; PUBLIC_KEY_LEN] {
        self.bytes
    }

    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let a = match EdwardsPoint::decompress(&self.bytes) {
            Some(p) => p,
            None => return false,
        };
        let r = match EdwardsPoint::decompress(&signature.r) {
            Some(p) => p,
            None => return false,
        };
        let s = match Scalar::from_canonical_bytes(&signature.s) {
            Some(s) => s,
            None => return false,
        };

        let mut h = Sha3_512::new();
        h.update(&signature.r);
        h.update(&self.bytes);
        h.update(message);
        let k = Scalar::from_bytes_mod_order(&h.finalize());

        // Check s·B == R + k·A.
        let lhs = EdwardsPoint::basepoint_mul(&s);
        let rhs = r.add(&a.scalar_mul(&k));
        lhs.equals(&rhs)
    }
}

impl Signature {
    /// Constructs a signature from its 64-byte encoding.
    pub fn from_bytes(bytes: &[u8; SIGNATURE_LEN]) -> Self {
        let mut r = [0u8; 32];
        let mut s = [0u8; 32];
        r.copy_from_slice(&bytes[..32]);
        s.copy_from_slice(&bytes[32..]);
        Signature { r, s }
    }

    /// Returns the 64-byte encoding.
    pub fn to_bytes(&self) -> [u8; SIGNATURE_LEN] {
        let mut out = [0u8; SIGNATURE_LEN];
        out[..32].copy_from_slice(&self.r);
        out[32..].copy_from_slice(&self.s);
        out
    }
}

impl Keypair {
    /// Generates a key pair from a 32-byte seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use sanctorum_crypto::ed25519::Keypair;
    /// let kp = Keypair::from_seed([7u8; 32]);
    /// let sig = kp.sign(b"measurement report");
    /// assert!(kp.public().verify(b"measurement report", &sig));
    /// assert!(!kp.public().verify(b"tampered report", &sig));
    /// ```
    pub fn from_seed(seed: [u8; SECRET_KEY_LEN]) -> Self {
        let secret = SecretKey::from_seed(seed);
        let public = secret.public_key();
        Self { secret, public }
    }

    /// Generates a key pair from an entropy/DRBG source.
    pub fn generate(drbg: &mut crate::drbg::ChaChaDrbg) -> Self {
        Self::from_seed(drbg.random_array())
    }

    /// Returns the public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Returns the secret key.
    pub fn secret(&self) -> &SecretKey {
        &self.secret
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let (a, prefix) = self.secret.expand();

        let mut h = Sha3_512::new();
        h.update(&prefix);
        h.update(message);
        let r = Scalar::from_bytes_mod_order(&h.finalize());

        let r_point = EdwardsPoint::basepoint_mul(&r).compress();

        let mut h = Sha3_512::new();
        h.update(&r_point);
        h.update(&self.public.bytes);
        h.update(message);
        let k = Scalar::from_bytes_mod_order(&h.finalize());

        let s = k.mul_add(&a, &r);
        Signature {
            r: r_point,
            s: s.to_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basepoint_has_order_l() {
        // l·B must be the identity.
        let l_minus_1 = {
            let mut b = crate::scalar::L_BYTES;
            b[0] -= 1;
            Scalar::from_canonical_bytes(&b).expect("l-1 is canonical")
        };
        let b = EdwardsPoint::basepoint();
        let almost = b.scalar_mul(&l_minus_1);
        assert_eq!(almost.add(&b), EdwardsPoint::identity());
    }

    #[test]
    fn basepoint_compress_round_trip() {
        let b = EdwardsPoint::basepoint();
        let c = b.compress();
        let d = EdwardsPoint::decompress(&c).expect("round trip");
        assert_eq!(b, d);
    }

    #[test]
    fn identity_properties() {
        let id = EdwardsPoint::identity();
        let b = EdwardsPoint::basepoint();
        assert_eq!(id.add(&b), b);
        assert_eq!(b.add(&id), b);
        assert_eq!(id.double(), id);
    }

    #[test]
    fn addition_is_commutative_and_associative() {
        let b = EdwardsPoint::basepoint();
        let two_b = b.double();
        let three_b = two_b.add(&b);
        assert_eq!(b.add(&two_b), two_b.add(&b));
        assert_eq!(three_b.add(&b), two_b.add(&two_b));
    }

    #[test]
    fn scalar_mul_matches_repeated_addition() {
        let b = EdwardsPoint::basepoint();
        let mut five = [0u8; 32];
        five[0] = 5;
        let five_s = Scalar::from_canonical_bytes(&five).expect("canonical");
        let by_mul = b.scalar_mul(&five_s);
        let by_add = b.double().double().add(&b);
        assert_eq!(by_mul, by_add);
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = Keypair::from_seed([42u8; 32]);
        let msg = b"remote attestation nonce + measurement";
        let sig = kp.sign(msg);
        assert!(kp.public().verify(msg, &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = Keypair::from_seed([42u8; 32]);
        let sig = kp.sign(b"original");
        assert!(!kp.public().verify(b"originaL", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = Keypair::from_seed([42u8; 32]);
        let sig = kp.sign(b"msg");
        let mut bytes = sig.to_bytes();
        bytes[5] ^= 1;
        assert!(!kp.public().verify(b"msg", &Signature::from_bytes(&bytes)));
        let mut bytes = sig.to_bytes();
        bytes[40] ^= 1;
        assert!(!kp.public().verify(b"msg", &Signature::from_bytes(&bytes)));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = Keypair::from_seed([1u8; 32]);
        let kp2 = Keypair::from_seed([2u8; 32]);
        let sig = kp1.sign(b"msg");
        assert!(!kp2.public().verify(b"msg", &sig));
    }

    #[test]
    fn non_canonical_s_rejected() {
        // Add l to s: same value mod l but a non-canonical encoding, which a
        // strict verifier must reject (signature malleability).
        let kp = Keypair::from_seed([3u8; 32]);
        let sig = kp.sign(b"msg");
        let s = crate::bignum::U512::from_le_bytes(&sig.s);
        let l = crate::bignum::U512::from_le_bytes(&crate::scalar::L_BYTES);
        let malleated = s.wrapping_add(&l).to_le_bytes_32();
        let bad = Signature { r: sig.r, s: malleated };
        assert!(!kp.public().verify(b"msg", &bad));
    }

    #[test]
    fn signature_serialization_round_trip() {
        let kp = Keypair::from_seed([9u8; 32]);
        let sig = kp.sign(b"data");
        let round = Signature::from_bytes(&sig.to_bytes());
        assert_eq!(sig, round);
        assert!(kp.public().verify(b"data", &round));
    }

    #[test]
    fn public_key_from_bytes_validates() {
        let kp = Keypair::from_seed([8u8; 32]);
        assert!(PublicKey::from_bytes(kp.public().to_bytes()).is_some());
        // y = 1 implies x = 0; an encoding claiming x = 0 is "negative"
        // (sign bit set) is invalid and must be rejected.
        let mut negative_zero = [0u8; 32];
        negative_zero[0] = 1;
        negative_zero[31] = 0x80;
        assert!(PublicKey::from_bytes(negative_zero).is_none());
    }

    #[test]
    fn distinct_seeds_give_distinct_keys() {
        let a = Keypair::from_seed([1u8; 32]);
        let b = Keypair::from_seed([2u8; 32]);
        assert_ne!(a.public().to_bytes(), b.public().to_bytes());
    }

    #[test]
    fn deterministic_signatures() {
        let kp = Keypair::from_seed([5u8; 32]);
        assert_eq!(kp.sign(b"m").to_bytes(), kp.sign(b"m").to_bytes());
        assert_ne!(kp.sign(b"m").to_bytes(), kp.sign(b"n").to_bytes());
    }
}
