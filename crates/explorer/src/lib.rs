//! Deterministic multi-hart adversarial explorer for the Sanctorum monitor.
//!
//! The hand-scripted adversarial tests each pin one interleaving of SM calls;
//! this crate explores *many*: a seeded PRNG scheduler interleaves per-hart
//! streams of honest OS traffic, raw resource calls, enclave mail, probes and
//! the full scripted attack battery (the [`Op`](sanctorum_os::ops::Op) model
//! of `sanctorum-os`), applies them to a Sanctum world and a Keystone world
//! in lockstep through the object-safe `SmApi` surface, and runs a
//! first-class invariant kernel ([`invariants`]) after every step:
//!
//! * resource exclusivity, clean-before-reuse, mailbox confidentiality,
//!   no-secret-leakage, adversary containment ([`invariants::Violation`]);
//! * measurement determinism and cross-backend agreement modulo declared
//!   platform capacity ([`diff`]).
//!
//! Everything is a pure function of the seed: a failure is reported as a
//! `(seed, step)` pair anyone can replay ([`Explorer::replay`]), and the
//! offending trace is minimized by prefix shrinking before it is reported.
//! The machine itself guarantees deterministic stepping (see
//! `Machine::state_digest`), which the explorer asserts by digest comparison
//! in its own test-suite.
//!
//! Deterministic interleaving can never catch a data race, so the crate
//! also ships a *concurrent* mode ([`concurrent`]): real OS threads drive
//! one shared monitor with invariant audits at quiescent barriers — the
//! soak that validates the monitor's fine-grained locking, while this
//! deterministic mode stays bit-for-bit stable for replay/differential
//! work (pinned by `tests/determinism.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod crash;
pub mod diff;
pub mod invariants;
pub mod trace;

pub use concurrent::{soak, SoakReport};
pub use crash::{lifecycle_traces, sweep_all, CrashCounterexample, CrashSweepReport};
pub use diff::DiffPair;
pub use invariants::{CheckedWorld, Violation};
pub use trace::TracedOp;

use sanctorum_core::monitor::TestWeakening;
use sanctorum_hal::addr::PhysAddr;
use sanctorum_hal::domain::CoreId;
use sanctorum_machine::MachineConfig;
use std::collections::BTreeMap;

/// Machine configuration tuned for exploration: the geometry of
/// `MachineConfig::small` scaled to more, smaller regions, so lifecycle ops
/// have room to churn and the clean-before-reuse scans stay cheap. The PMP
/// budget covers every region, so the two backends agree everywhere and the
/// default sweep asserts zero divergences.
pub fn explorer_machine_config() -> MachineConfig {
    MachineConfig {
        memory_base: PhysAddr::new(0x8000_0000),
        memory_size: 4 * 1024 * 1024,
        dram_region_size: 256 * 1024,
        pmp_entries: 16,
        device_id: 0xeb10_4e5e,
        ..MachineConfig::small()
    }
}

/// Explorer configuration.
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// Ops per seed.
    pub steps: usize,
    /// Number of interleaved per-hart op streams (bounded by the machine's
    /// hart count).
    pub harts: u32,
    /// Machine configuration both worlds boot from.
    pub machine: MachineConfig,
    /// Deliberate monitor weakening (self-check runs only).
    pub weaken: Option<TestWeakening>,
    /// Whether failing traces are minimized before reporting.
    pub shrink: bool,
    /// Maximum number of shrink probes (full re-executions) per failure.
    pub shrink_budget: usize,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        Self {
            steps: 200,
            harts: 2,
            machine: explorer_machine_config(),
            weaken: None,
            shrink: true,
            shrink_budget: 96,
        }
    }
}

/// A failure, pinned to its replay coordinates and minimized.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The seed whose trace failed.
    pub seed: u64,
    /// The zero-based step at which the violation fired.
    pub step: usize,
    /// The violation.
    pub violation: Violation,
    /// The minimized trace still reproducing the violation kind.
    pub minimized: Vec<TracedOp>,
    /// How many full re-executions the shrinker spent.
    pub shrink_probes: usize,
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "violation at (seed={:#x}, step={}): {}",
            self.seed, self.step, self.violation
        )?;
        writeln!(
            f,
            "replay: Explorer::replay(seed, step); minimized to {} ops ({} probes):",
            self.minimized.len(),
            self.shrink_probes
        )?;
        for (index, traced) in self.minimized.iter().enumerate() {
            writeln!(f, "  {index:3}  hart{} {:?}", traced.hart, traced.op)?;
        }
        Ok(())
    }
}

/// The result of exploring one seed.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// The explored seed.
    pub seed: u64,
    /// Steps executed (the full budget, or up to the violation).
    pub steps_executed: usize,
    /// Ops applied, by label.
    pub op_counts: BTreeMap<&'static str, usize>,
    /// Declared-capacity divergences (acceptable by policy).
    pub declared_divergences: usize,
    /// The failure, if the run violated an invariant or diverged.
    pub failure: Option<FailureReport>,
    /// `(sanctum, keystone)` machine state digests at end of run — equal
    /// digests across repeated runs certify deterministic replay.
    pub final_digests: (u64, u64),
}

/// Aggregate statistics over a seed sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Seeds explored.
    pub seeds: usize,
    /// Total ops applied across all seeds (per world).
    pub total_steps: usize,
    /// Ops by label, aggregated.
    pub op_counts: BTreeMap<&'static str, usize>,
    /// Declared-capacity divergences, aggregated.
    pub declared_divergences: usize,
    /// Every failure found.
    pub failures: Vec<FailureReport>,
}

/// The explorer: generates, executes, checks, replays and shrinks traces.
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    config: ExplorerConfig,
}

impl Explorer {
    /// Creates an explorer with the given configuration.
    pub fn new(config: ExplorerConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ExplorerConfig {
        &self.config
    }

    /// Explores one seed: generates the trace, drives both worlds, and — on
    /// failure — minimizes the offending prefix.
    pub fn run_seed(&self, seed: u64) -> SeedReport {
        let trace = trace::generate(seed, self.config.harts, self.config.steps);
        let mut pair = DiffPair::boot(&self.config.machine, self.config.weaken);
        let mut op_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for (step, traced) in trace.iter().enumerate() {
            *op_counts.entry(traced.op.label()).or_default() += 1;
            if let Err(violation) = pair.step(CoreId::new(traced.hart), &traced.op) {
                let (minimized, shrink_probes) = if self.config.shrink {
                    self.minimize(&trace[..=step], violation.kind())
                } else {
                    (trace[..=step].to_vec(), 0)
                };
                return SeedReport {
                    seed,
                    steps_executed: step + 1,
                    op_counts,
                    declared_divergences: pair.declared_divergences,
                    failure: Some(FailureReport {
                        seed,
                        step,
                        violation,
                        minimized,
                        shrink_probes,
                    }),
                    final_digests: digests(&pair),
                };
            }
        }
        SeedReport {
            seed,
            steps_executed: trace.len(),
            op_counts,
            declared_divergences: pair.declared_divergences,
            failure: None,
            final_digests: digests(&pair),
        }
    }

    /// Explores a range of seeds and aggregates the statistics.
    pub fn sweep(&self, seeds: std::ops::Range<u64>) -> SweepStats {
        let mut stats = SweepStats::default();
        for seed in seeds {
            let report = self.run_seed(seed);
            stats.seeds += 1;
            stats.total_steps += report.steps_executed;
            for (label, count) in report.op_counts {
                *stats.op_counts.entry(label).or_default() += count;
            }
            stats.declared_divergences += report.declared_divergences;
            stats.failures.extend(report.failure);
        }
        stats
    }

    /// Replays the trace of `seed` up to and including `step`, returning the
    /// violation the prefix reproduces (with its step), if any.
    ///
    /// This is the reproduction path a failure report names: the prefix is
    /// regenerated from the seed alone, so the two-word coordinate is a
    /// complete bug report.
    pub fn replay(&self, seed: u64, step: usize) -> Option<(usize, Violation)> {
        let len = (step + 1).max(1);
        let trace = trace::generate(seed, self.config.harts, len);
        self.probe(&trace)
    }

    /// Executes an explicit op list against a fresh world pair, returning the
    /// first violation (with its step), if any.
    pub fn probe(&self, ops: &[TracedOp]) -> Option<(usize, Violation)> {
        let mut pair = DiffPair::boot(&self.config.machine, self.config.weaken);
        for (step, traced) in ops.iter().enumerate() {
            if let Err(violation) = pair.step(CoreId::new(traced.hart), &traced.op) {
                return Some((step, violation));
            }
        }
        None
    }

    /// Prefix shrinking: starting from the failing prefix, repeatedly deletes
    /// chunks (then single ops) as long as the shortened trace still
    /// reproduces the same violation kind. Abstract op selectors make any
    /// subsequence executable, so deletion is always sound.
    fn minimize(&self, failing_prefix: &[TracedOp], kind: &'static str) -> (Vec<TracedOp>, usize) {
        let mut ops = failing_prefix.to_vec();
        let mut probes = 0usize;
        let still_fails = |candidate: &[TracedOp], probes: &mut usize| {
            *probes += 1;
            self.probe(candidate)
                .map(|(_, v)| v.kind() == kind)
                .unwrap_or(false)
        };
        let mut chunk = (ops.len() / 2).max(1);
        loop {
            let mut any_removed = false;
            let mut start = 0;
            while start < ops.len() && probes < self.config.shrink_budget {
                let end = (start + chunk).min(ops.len());
                let mut candidate = ops.clone();
                candidate.drain(start..end);
                if !candidate.is_empty() && still_fails(&candidate, &mut probes) {
                    ops = candidate;
                    any_removed = true;
                    // Re-test the same start index against the shorter trace.
                } else {
                    start = end;
                }
            }
            if probes >= self.config.shrink_budget {
                break;
            }
            if chunk == 1 {
                if !any_removed {
                    break;
                }
            } else {
                chunk = (chunk / 2).max(1);
            }
        }
        (ops, probes)
    }
}

fn digests(pair: &DiffPair) -> (u64, u64) {
    (
        pair.sanctum.world.system.machine.state_digest(),
        pair.keystone.world.system.machine.state_digest(),
    )
}
