//! Error type returned by every security-monitor API call.

use sanctorum_hal::domain::EnclaveId;
use sanctorum_hal::isolation::IsolationError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors returned by the SM API.
///
/// The variants mirror the outcome classes of the paper's Fig. 1 decision
/// flow: a call can be *unauthorized* (the caller is not allowed to make it),
/// *illegal* (arguments or current state forbid it), or fail because of a
/// *concurrent transaction* on the same object; platform and memory failures
/// surface the underlying cause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmError {
    /// The caller is not permitted to make this call (e.g. an enclave calling
    /// an OS-only API, or a non-signing enclave requesting the attestation
    /// key).
    Unauthorized,
    /// The referenced enclave does not exist.
    UnknownEnclave(EnclaveId),
    /// The referenced thread does not exist.
    UnknownThread(u64),
    /// The object exists but is in the wrong lifecycle state for this call.
    InvalidState {
        /// Human-readable description of the violated precondition.
        reason: &'static str,
    },
    /// Arguments are malformed (unaligned addresses, zero-length ranges,
    /// out-of-range indices, oversized payloads).
    InvalidArgument {
        /// Human-readable description of the problem.
        reason: &'static str,
    },
    /// Pages must be loaded in monotonically increasing physical order so the
    /// virtual-to-physical mapping is provably injective (paper Section VI-A).
    MeasurementOrderViolation,
    /// The referenced machine resource does not exist.
    UnknownResource,
    /// The resource state machine forbids this transition (paper Fig. 2).
    ResourceStateViolation {
        /// Human-readable description of the violated transition.
        reason: &'static str,
    },
    /// The platform has run out of an isolation resource (metadata slots,
    /// PMP entries, mailboxes, threads).
    OutOfResources {
        /// Name of the exhausted resource.
        resource: &'static str,
    },
    /// Another SM API transaction holds the lock on the target object;
    /// the caller should retry (paper Section V-A).
    ConcurrentCall,
    /// The destination mailbox has not accepted mail from this sender.
    MailNotAccepted,
    /// The mailbox is empty (nothing to get) or full (cannot send).
    MailboxUnavailable,
    /// The isolation backend rejected a request.
    Platform(IsolationError),
    /// A physical memory access failed (address outside populated DRAM).
    Memory,
    /// The call could not complete because of a transient condition — an
    /// injected or real backend fault, or a region quarantined while the
    /// backend misbehaves. Shared state was rolled back (or parked in a
    /// recoverable quarantine), so the caller may retry after backing off;
    /// `SecurityMonitor::recover` clears the quarantine once the backend
    /// heals.
    Again,
}

impl fmt::Display for SmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmError::Unauthorized => write!(f, "caller not authorized for this call"),
            SmError::UnknownEnclave(id) => write!(f, "unknown {id}"),
            SmError::UnknownThread(tid) => write!(f, "unknown thread {tid:#x}"),
            SmError::InvalidState { reason } => write!(f, "invalid state: {reason}"),
            SmError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            SmError::MeasurementOrderViolation => {
                write!(f, "pages must be loaded in ascending physical order")
            }
            SmError::UnknownResource => write!(f, "unknown machine resource"),
            SmError::ResourceStateViolation { reason } => {
                write!(f, "resource state violation: {reason}")
            }
            SmError::OutOfResources { resource } => write!(f, "out of {resource}"),
            SmError::ConcurrentCall => write!(f, "concurrent transaction on this object"),
            SmError::MailNotAccepted => write!(f, "recipient has not accepted mail from sender"),
            SmError::MailboxUnavailable => write!(f, "mailbox empty or full"),
            SmError::Platform(e) => write!(f, "platform error: {e}"),
            SmError::Memory => write!(f, "physical memory access failed"),
            SmError::Again => write!(f, "transient fault; retry after recovery"),
        }
    }
}

impl std::error::Error for SmError {}

impl From<IsolationError> for SmError {
    fn from(e: IsolationError) -> Self {
        match e {
            // A transient backend fault is retriable, not a hard platform
            // error: surface it as Again so workers back off instead of
            // treating the call as permanently failed.
            IsolationError::TransientFault => SmError::Again,
            other => SmError::Platform(other),
        }
    }
}

impl From<sanctorum_machine::machine::MachineError> for SmError {
    fn from(_: sanctorum_machine::machine::MachineError) -> Self {
        SmError::Memory
    }
}

/// Result alias for SM API calls.
pub type SmResult<T> = Result<T, SmError>;

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_hal::isolation::RegionId;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            format!("{}", SmError::Unauthorized),
            "caller not authorized for this call"
        );
        assert!(format!("{}", SmError::UnknownEnclave(EnclaveId::new(0x80))).contains("0x80"));
        assert!(format!(
            "{}",
            SmError::Platform(IsolationError::UnknownRegion(RegionId::new(2)))
        )
        .contains("region2"));
        assert!(format!("{}", SmError::OutOfResources { resource: "mailboxes" })
            .contains("mailboxes"));
    }

    #[test]
    fn isolation_error_converts() {
        let e: SmError = IsolationError::ResourceExhausted { resource: "pmp entries" }.into();
        assert!(matches!(e, SmError::Platform(_)));
    }

    #[test]
    fn transient_backend_fault_becomes_again() {
        let e: SmError = IsolationError::TransientFault.into();
        assert_eq!(e, SmError::Again);
        assert!(format!("{e}").contains("retry"));
    }
}
