//! Crypto primitive microbenchmarks: the per-operation costs that set the
//! floor for attestation throughput (`attestation_service_stats`) and fleet
//! latency percentiles (`fleet_stats`).
//!
//! Run with:
//! `cargo run --release -p sanctorum-bench --example xbench`

use sanctorum_crypto::ed25519::{verify_batch, Keypair, PublicKey, Signature};
use sanctorum_crypto::sha3::Sha3_256;
use sanctorum_crypto::x25519;
use std::time::Instant;

fn main() {
    let mut acc = 0u8;

    let secret = x25519::clamp_scalar([0x11; 32]);
    let peer = x25519::public_key(&[0x22; 32]);
    let n = 2000u32;
    let t = Instant::now();
    for _ in 0..n {
        acc ^= x25519::shared_secret(&secret, &peer)[0];
    }
    println!(
        "x25519 shared_secret (ladder): {:>7.1} us/op",
        t.elapsed().as_micros() as f64 / n as f64
    );

    let t = Instant::now();
    for i in 0..n {
        acc ^= x25519::public_key(&[i as u8; 32])[0];
    }
    println!(
        "x25519 public_key (comb):      {:>7.1} us/op",
        t.elapsed().as_micros() as f64 / n as f64
    );

    let msg = [0u8; 64];
    let t = Instant::now();
    for _ in 0..n {
        acc ^= Sha3_256::digest(&msg)[0];
    }
    println!(
        "sha3-256 (64 B):               {:>7.2} us/op",
        t.elapsed().as_micros() as f64 / n as f64
    );

    let kp = Keypair::from_seed([7u8; 32]);
    let sig = kp.sign(&msg);
    let t = Instant::now();
    for _ in 0..1000 {
        assert!(kp.public().verify(&msg, &sig));
    }
    println!(
        "ed25519 verify (single):       {:>7.1} us/op",
        t.elapsed().as_micros() as f64 / 1000.0
    );

    let t = Instant::now();
    for i in 0..1000u32 {
        acc ^= kp.sign(&[i as u8; 64]).to_bytes()[0];
    }
    println!(
        "ed25519 sign:                  {:>7.1} us/op",
        t.elapsed().as_micros() as f64 / 1000.0
    );

    let t = Instant::now();
    for i in 0..200u32 {
        acc ^= Keypair::from_seed([i as u8; 32]).sign(&msg).to_bytes()[0];
    }
    println!(
        "ed25519 from_seed + sign:      {:>7.1} us/op",
        t.elapsed().as_micros() as f64 / 200.0
    );

    for batch_size in [4usize, 8, 16] {
        let keys: Vec<Keypair> = (0..batch_size)
            .map(|i| Keypair::from_seed([i as u8 + 1; 32]))
            .collect();
        let messages: Vec<Vec<u8>> = (0..batch_size)
            .map(|i| format!("attestation report {i}").into_bytes())
            .collect();
        let sigs: Vec<Signature> = keys.iter().zip(&messages).map(|(k, m)| k.sign(m)).collect();
        let batch: Vec<(&PublicKey, &[u8], &Signature)> = (0..batch_size)
            .map(|i| (keys[i].public(), messages[i].as_slice(), &sigs[i]))
            .collect();
        let rounds = 200u32;
        let t = Instant::now();
        for _ in 0..rounds {
            assert!(verify_batch(&batch));
        }
        let per_sig = t.elapsed().as_micros() as f64 / (rounds as usize * batch_size) as f64;
        println!("ed25519 verify (batch of {batch_size:>2}): {per_sig:>7.1} us/sig");
    }

    std::hint::black_box(acc);
}
