//! The register-level SM call ABI.
//!
//! SM API calls are made "via machine events as a system call to SM"
//! (paper Section V-A): the caller places a call number in `a0` and arguments
//! in `a1`–`a5`, executes an environment call, and receives a status code in
//! `a0` plus an optional value in `a1`. This module defines the call numbers
//! and the encode/decode logic used by the event dispatcher; direct Rust
//! calls into [`crate::monitor::SecurityMonitor`] bypass it (the OS model uses
//! both paths, and the Fig. 1 benchmarks exercise this one).

use crate::error::SmError;
use sanctorum_hal::addr::{PhysAddr, VirtAddr};
use sanctorum_hal::domain::EnclaveId;
use sanctorum_hal::isolation::RegionId;
use sanctorum_hal::perm::MemPerms;
use serde::{Deserialize, Serialize};

/// A decoded SM API call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmCall {
    /// Create an enclave over one memory region.
    CreateEnclave {
        /// Base of the enclave virtual range.
        evrange_base: VirtAddr,
        /// Length of the enclave virtual range.
        evrange_len: u64,
        /// The single region dedicated to the enclave (the register ABI
        /// carries one; multi-region enclaves use repeated grants).
        region: RegionId,
    },
    /// Reserve the enclave's page tables.
    AllocatePageTable {
        /// Target enclave.
        eid: EnclaveId,
    },
    /// Load one page of initial contents.
    LoadPage {
        /// Target enclave.
        eid: EnclaveId,
        /// Destination virtual address inside `evrange`.
        vaddr: VirtAddr,
        /// Source physical address in OS memory.
        src: PhysAddr,
        /// Permission bits (R=1, W=2, X=4).
        perms: MemPerms,
    },
    /// Create an enclave thread during loading.
    LoadThread {
        /// Target enclave.
        eid: EnclaveId,
        /// Entry program counter.
        entry_pc: u64,
    },
    /// Seal the enclave and finalize its measurement.
    InitEnclave {
        /// Target enclave.
        eid: EnclaveId,
    },
    /// Destroy an enclave.
    DeleteEnclave {
        /// Target enclave.
        eid: EnclaveId,
    },
    /// Schedule an enclave thread onto the calling core.
    EnterEnclave {
        /// Target enclave.
        eid: EnclaveId,
        /// Thread to run.
        tid: u64,
    },
    /// Voluntary enclave exit from the calling core.
    ExitEnclave,
    /// Block a memory region resource.
    BlockRegion {
        /// The region.
        region: RegionId,
    },
    /// Clean a blocked memory region resource.
    CleanRegion {
        /// The region.
        region: RegionId,
    },
    /// Grant an available region to the untrusted OS (`owner_eid == 0`) or to
    /// an enclave.
    GrantRegion {
        /// The region.
        region: RegionId,
        /// New owner enclave id, or 0 for the untrusted OS.
        owner_eid: u64,
    },
    /// Accept mail from a sender into one of the caller's mailboxes.
    AcceptMail {
        /// Mailbox index.
        mailbox: u64,
        /// Sender id (enclave id value, or 0 for the OS).
        sender_id: u64,
    },
    /// Send mail: the message bytes are read from untrusted memory.
    SendMail {
        /// Recipient enclave.
        recipient: EnclaveId,
        /// Physical address of the message.
        msg_addr: PhysAddr,
        /// Message length in bytes.
        msg_len: u64,
    },
    /// Fetch waiting mail into a caller-supplied buffer.
    GetMail {
        /// Mailbox index.
        mailbox: u64,
        /// Physical address of the output buffer.
        out_addr: PhysAddr,
        /// Capacity of the output buffer.
        out_len: u64,
    },
    /// Read a public identity field.
    GetField {
        /// Field selector (see [`crate::monitor::PublicField`] mapping in the
        /// dispatcher).
        field: u64,
    },
}

/// Call numbers used in `a0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
#[allow(missing_docs)]
pub enum SmCallNumber {
    CreateEnclave = 1,
    AllocatePageTable = 2,
    LoadPage = 3,
    LoadThread = 4,
    InitEnclave = 5,
    DeleteEnclave = 6,
    EnterEnclave = 7,
    ExitEnclave = 8,
    BlockRegion = 9,
    CleanRegion = 10,
    GrantRegion = 11,
    AcceptMail = 12,
    SendMail = 13,
    GetMail = 14,
    GetField = 15,
}

/// Errors produced when decoding the register file into an [`SmCall`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The call number in `a0` is not recognised.
    UnknownCallNumber(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownCallNumber(n) => write!(f, "unknown SM call number {n}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl SmCall {
    /// Encodes the call into the six argument registers `a0`–`a5`.
    pub fn encode(&self) -> [u64; 6] {
        match *self {
            SmCall::CreateEnclave { evrange_base, evrange_len, region } => [
                SmCallNumber::CreateEnclave as u64,
                evrange_base.as_u64(),
                evrange_len,
                region.0 as u64,
                0,
                0,
            ],
            SmCall::AllocatePageTable { eid } => {
                [SmCallNumber::AllocatePageTable as u64, eid.as_u64(), 0, 0, 0, 0]
            }
            SmCall::LoadPage { eid, vaddr, src, perms } => [
                SmCallNumber::LoadPage as u64,
                eid.as_u64(),
                vaddr.as_u64(),
                src.as_u64(),
                perms.bits() as u64,
                0,
            ],
            SmCall::LoadThread { eid, entry_pc } => {
                [SmCallNumber::LoadThread as u64, eid.as_u64(), entry_pc, 0, 0, 0]
            }
            SmCall::InitEnclave { eid } => {
                [SmCallNumber::InitEnclave as u64, eid.as_u64(), 0, 0, 0, 0]
            }
            SmCall::DeleteEnclave { eid } => {
                [SmCallNumber::DeleteEnclave as u64, eid.as_u64(), 0, 0, 0, 0]
            }
            SmCall::EnterEnclave { eid, tid } => {
                [SmCallNumber::EnterEnclave as u64, eid.as_u64(), tid, 0, 0, 0]
            }
            SmCall::ExitEnclave => [SmCallNumber::ExitEnclave as u64, 0, 0, 0, 0, 0],
            SmCall::BlockRegion { region } => {
                [SmCallNumber::BlockRegion as u64, region.0 as u64, 0, 0, 0, 0]
            }
            SmCall::CleanRegion { region } => {
                [SmCallNumber::CleanRegion as u64, region.0 as u64, 0, 0, 0, 0]
            }
            SmCall::GrantRegion { region, owner_eid } => {
                [SmCallNumber::GrantRegion as u64, region.0 as u64, owner_eid, 0, 0, 0]
            }
            SmCall::AcceptMail { mailbox, sender_id } => {
                [SmCallNumber::AcceptMail as u64, mailbox, sender_id, 0, 0, 0]
            }
            SmCall::SendMail { recipient, msg_addr, msg_len } => [
                SmCallNumber::SendMail as u64,
                recipient.as_u64(),
                msg_addr.as_u64(),
                msg_len,
                0,
                0,
            ],
            SmCall::GetMail { mailbox, out_addr, out_len } => [
                SmCallNumber::GetMail as u64,
                mailbox,
                out_addr.as_u64(),
                out_len,
                0,
                0,
            ],
            SmCall::GetField { field } => [SmCallNumber::GetField as u64, field, 0, 0, 0, 0],
        }
    }

    /// Decodes the argument registers back into a call.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnknownCallNumber`] if `a0` does not name a
    /// call.
    pub fn decode(regs: &[u64; 6]) -> Result<SmCall, DecodeError> {
        let call = match regs[0] {
            1 => SmCall::CreateEnclave {
                evrange_base: VirtAddr::new(regs[1]),
                evrange_len: regs[2],
                region: RegionId::new(regs[3] as u32),
            },
            2 => SmCall::AllocatePageTable { eid: EnclaveId::new(regs[1]) },
            3 => SmCall::LoadPage {
                eid: EnclaveId::new(regs[1]),
                vaddr: VirtAddr::new(regs[2]),
                src: PhysAddr::new(regs[3]),
                perms: MemPerms::from_bits(regs[4] as u8),
            },
            4 => SmCall::LoadThread {
                eid: EnclaveId::new(regs[1]),
                entry_pc: regs[2],
            },
            5 => SmCall::InitEnclave { eid: EnclaveId::new(regs[1]) },
            6 => SmCall::DeleteEnclave { eid: EnclaveId::new(regs[1]) },
            7 => SmCall::EnterEnclave {
                eid: EnclaveId::new(regs[1]),
                tid: regs[2],
            },
            8 => SmCall::ExitEnclave,
            9 => SmCall::BlockRegion { region: RegionId::new(regs[1] as u32) },
            10 => SmCall::CleanRegion { region: RegionId::new(regs[1] as u32) },
            11 => SmCall::GrantRegion {
                region: RegionId::new(regs[1] as u32),
                owner_eid: regs[2],
            },
            12 => SmCall::AcceptMail {
                mailbox: regs[1],
                sender_id: regs[2],
            },
            13 => SmCall::SendMail {
                recipient: EnclaveId::new(regs[1]),
                msg_addr: PhysAddr::new(regs[2]),
                msg_len: regs[3],
            },
            14 => SmCall::GetMail {
                mailbox: regs[1],
                out_addr: PhysAddr::new(regs[2]),
                out_len: regs[3],
            },
            15 => SmCall::GetField { field: regs[1] },
            other => return Err(DecodeError::UnknownCallNumber(other)),
        };
        Ok(call)
    }
}

/// Status codes returned in `a0` after an SM call.
pub mod status {
    /// Call succeeded.
    pub const OK: u64 = 0;
    /// Caller not authorized.
    pub const UNAUTHORIZED: u64 = 1;
    /// Arguments or object state invalid.
    pub const INVALID: u64 = 2;
    /// Concurrent transaction; retry.
    pub const CONCURRENT: u64 = 3;
    /// Out of resources.
    pub const NO_RESOURCES: u64 = 4;
    /// Mailbox-related failure.
    pub const MAIL: u64 = 5;
    /// Platform / memory failure.
    pub const PLATFORM: u64 = 6;
}

/// Maps an API error to the register-level status code.
pub fn status_of(err: &SmError) -> u64 {
    match err {
        SmError::Unauthorized => status::UNAUTHORIZED,
        SmError::ConcurrentCall => status::CONCURRENT,
        SmError::OutOfResources { .. } => status::NO_RESOURCES,
        SmError::MailNotAccepted | SmError::MailboxUnavailable => status::MAIL,
        SmError::Platform(_) | SmError::Memory => status::PLATFORM,
        _ => status::INVALID,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(call: SmCall) {
        let encoded = call.encode();
        let decoded = SmCall::decode(&encoded).expect("decodes");
        assert_eq!(decoded, call);
    }

    #[test]
    fn all_calls_round_trip() {
        round_trip(SmCall::CreateEnclave {
            evrange_base: VirtAddr::new(0x10000),
            evrange_len: 0x8000,
            region: RegionId::new(3),
        });
        round_trip(SmCall::AllocatePageTable { eid: EnclaveId::new(0x8010_0000) });
        round_trip(SmCall::LoadPage {
            eid: EnclaveId::new(0x8010_0000),
            vaddr: VirtAddr::new(0x11000),
            src: PhysAddr::new(0x8200_0000),
            perms: MemPerms::RX,
        });
        round_trip(SmCall::LoadThread { eid: EnclaveId::new(1), entry_pc: 0x40 });
        round_trip(SmCall::InitEnclave { eid: EnclaveId::new(1) });
        round_trip(SmCall::DeleteEnclave { eid: EnclaveId::new(1) });
        round_trip(SmCall::EnterEnclave { eid: EnclaveId::new(1), tid: 0x1001 });
        round_trip(SmCall::ExitEnclave);
        round_trip(SmCall::BlockRegion { region: RegionId::new(7) });
        round_trip(SmCall::CleanRegion { region: RegionId::new(7) });
        round_trip(SmCall::GrantRegion { region: RegionId::new(7), owner_eid: 0 });
        round_trip(SmCall::AcceptMail { mailbox: 1, sender_id: 0x8020_0000 });
        round_trip(SmCall::SendMail {
            recipient: EnclaveId::new(0x8020_0000),
            msg_addr: PhysAddr::new(0x8300_0000),
            msg_len: 64,
        });
        round_trip(SmCall::GetMail {
            mailbox: 0,
            out_addr: PhysAddr::new(0x8300_1000),
            out_len: 1024,
        });
        round_trip(SmCall::GetField { field: 2 });
    }

    #[test]
    fn unknown_call_number_rejected() {
        assert_eq!(
            SmCall::decode(&[999, 0, 0, 0, 0, 0]),
            Err(DecodeError::UnknownCallNumber(999))
        );
        assert_eq!(
            SmCall::decode(&[0, 0, 0, 0, 0, 0]),
            Err(DecodeError::UnknownCallNumber(0))
        );
    }

    #[test]
    fn status_mapping() {
        assert_eq!(status_of(&SmError::Unauthorized), status::UNAUTHORIZED);
        assert_eq!(status_of(&SmError::ConcurrentCall), status::CONCURRENT);
        assert_eq!(
            status_of(&SmError::OutOfResources { resource: "x" }),
            status::NO_RESOURCES
        );
        assert_eq!(status_of(&SmError::MailboxUnavailable), status::MAIL);
        assert_eq!(status_of(&SmError::Memory), status::PLATFORM);
        assert_eq!(
            status_of(&SmError::InvalidState { reason: "r" }),
            status::INVALID
        );
    }
}
