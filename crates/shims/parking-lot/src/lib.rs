//! Std-backed stand-in for the subset of `parking_lot` the workspace uses.
//!
//! Semantics match parking_lot where it matters to the monitor: `lock()`
//! returns a guard directly (no poisoning — a panicked holder does not wedge
//! the lock for everyone else), and `try_lock()` returns an `Option`.
//! Performance characteristics obviously differ from the real crate, but all
//! cycle accounting in this workspace is simulated, so benchmark *results*
//! are unaffected by the lock implementation.

#![forbid(unsafe_code)]

use std::sync::TryLockError;

/// Mutual exclusion primitive (API subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`] (API subset of `parking_lot::MutexGuard`).
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a poisoned lock is recovered rather than
    /// propagated, matching parking_lot's no-poisoning behaviour.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed; the borrow checker guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_try_lock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(m.try_lock().map(|g| *g), Some(2));
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
            assert!(l.try_write().is_none());
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
