//! Demonstrates the batched SM-call path: packing several calls into one
//! table in OS memory and executing them in a single trap, with per-call
//! statuses written back (see ARCHITECTURE.md, "Batched calls").
//!
//! Run with: `cargo run --example batched_calls`

use sanctorum_core::api::{status, SmCall};
use sanctorum_core::resource::{ResourceId, ResourceState};
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_hal::isolation::RegionId;
use sanctorum_machine::hart::PrivilegeLevel;
use sanctorum_machine::trap::TrapCause;
use sanctorum_os::os::Os;
use sanctorum_os::system::{PlatformKind, System};

fn status_name(code: u64) -> &'static str {
    match code {
        status::OK => "OK",
        status::UNAUTHORIZED => "UNAUTHORIZED",
        status::UNKNOWN_ENCLAVE => "UNKNOWN_ENCLAVE",
        status::INVALID_ARGUMENT => "INVALID_ARGUMENT",
        status::ILLEGAL_CALL => "ILLEGAL_CALL",
        status::NOT_RUN => "NOT_RUN",
        _ => "(other)",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = System::boot_small(PlatformKind::Sanctum);
    let os = Os::new(&system);
    let core = CoreId::new(0);
    system
        .machine
        .install_context(core, DomainKind::Untrusted, PrivilegeLevel::Supervisor, None, 0);

    // Find a region the OS owns and can cycle through block → clean → grant —
    // excluding the staging region, which holds the batch table itself
    // (cleaning the table's own region mid-batch would corrupt the demo).
    let config = system.machine.config();
    let staging_region =
        (os.staging_base().as_u64() - config.memory_base.as_u64()) / config.dram_region_size as u64;
    let region = (0..config.num_regions() as u32)
        .map(RegionId::new)
        .find(|r| {
            r.index() as u64 != staging_region
                && matches!(
                    system.monitor.resource_state(ResourceId::Region(*r)),
                    Ok(ResourceState::Owned(DomainKind::Untrusted))
                )
        })
        .expect("an untrusted region exists at boot");

    let calls = vec![
        SmCall::GetField { field: 3 },
        SmCall::BlockRegion { region },
        SmCall::CleanRegion { region },
        SmCall::GrantRegion { region, owner_eid: 0 },
        SmCall::AcceptMail { mailbox: 0, sender_id: 0 }, // enclave-only: fails
        SmCall::GetField { field: 0 },
        SmCall::ExitEnclave {}, // context-switching: aborts the batch here
        SmCall::GetField { field: 2 }, // never reached
    ];

    // One table in OS staging memory, one trap, per-call statuses back.
    let table = os.staging_base().offset(0x8000);
    system.monitor.stage_batch(core, table, &calls)?;
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    let (batch_status, executed) = system.monitor.read_call_result(core);

    println!("batch status : {} ({batch_status})", status_name(batch_status));
    println!("entries run  : {executed} of {}", calls.len());
    println!();
    println!("{:<4} {:<24} {:<18} {:>8}", "#", "call", "status", "value");
    for (idx, call) in calls.iter().enumerate() {
        let (code, value) = system.monitor.read_batch_result(table, idx as u64)?;
        println!("{idx:<4} {:<24} {:<18} {value:>8}", call.name(), status_name(code));
    }
    Ok(())
}
