//! SM-mediated mailboxes for local attestation (paper Section VI-B, Fig. 5).
//!
//! Each enclave's metadata contains a small array of mailboxes. A recipient
//! must first signal intent to receive from a specific sender
//! (`accept_mail`); the sender (another enclave or the OS) can then deposit
//! one message (`send_mail`), which the SM tags with the sender's
//! measurement; the recipient retrieves it with `get_mail`. Because the SM is
//! trusted and mediates every step, the sender identity needs no
//! cryptographic proof — this is the basis of local attestation (Fig. 6).

use crate::error::{SmError, SmResult};
use crate::measurement::Measurement;
use serde::{Deserialize, Serialize};

/// Maximum message size in bytes (one cache line short of a page, mirroring
/// the small fixed-size mail buffers of the Sanctum implementation).
pub const MAX_MAIL_LEN: usize = 1024;

/// Identity of a mail sender as recorded by the SM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SenderIdentity {
    /// The untrusted OS (which has no measurement).
    Untrusted,
    /// An enclave, identified by its measurement.
    Enclave(Measurement),
}

/// The state of one mailbox (paper Fig. 5 plus the explicit "accepted"
/// intermediate required to thwart denial of service by unsolicited senders).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MailboxState {
    /// Not expecting mail.
    Idle,
    /// `accept_mail` was called: waiting for mail from the named sender.
    Accepting {
        /// The sender the recipient is willing to receive from.
        expected_sender: u64,
    },
    /// A message is waiting to be fetched.
    Full {
        /// Sender identity recorded by the SM.
        sender: SenderIdentity,
        /// Raw sender id (enclave id value or 0 for the OS).
        sender_id: u64,
        /// The message payload.
        message: Vec<u8>,
    },
}

/// One mailbox.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mailbox {
    state: MailboxState,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Mailbox {
    /// Creates an idle mailbox.
    pub fn new() -> Self {
        Self {
            state: MailboxState::Idle,
        }
    }

    /// Returns the current state.
    pub fn state(&self) -> &MailboxState {
        &self.state
    }

    /// `accept_mail`: the recipient signals intent to receive from
    /// `expected_sender`.
    ///
    /// # Errors
    ///
    /// Fails if a message is already waiting (it must be fetched first).
    pub fn accept(&mut self, expected_sender: u64) -> SmResult<()> {
        match &self.state {
            MailboxState::Full { .. } => Err(SmError::MailboxUnavailable),
            _ => {
                self.state = MailboxState::Accepting { expected_sender };
                Ok(())
            }
        }
    }

    /// `send_mail`: deposits a message from `sender_id` with the SM-recorded
    /// `sender` identity.
    ///
    /// # Errors
    ///
    /// Fails if the recipient has not accepted mail from this sender, if a
    /// message is already waiting, or if the message is too large.
    pub fn send(
        &mut self,
        sender_id: u64,
        sender: SenderIdentity,
        message: &[u8],
    ) -> SmResult<()> {
        if message.len() > MAX_MAIL_LEN {
            return Err(SmError::InvalidArgument {
                reason: "mail message too large",
            });
        }
        match &self.state {
            MailboxState::Accepting { expected_sender } if *expected_sender == sender_id => {
                self.state = MailboxState::Full {
                    sender,
                    sender_id,
                    message: message.to_vec(),
                };
                Ok(())
            }
            MailboxState::Accepting { .. } => Err(SmError::MailNotAccepted),
            MailboxState::Idle => Err(SmError::MailNotAccepted),
            MailboxState::Full { .. } => Err(SmError::MailboxUnavailable),
        }
    }

    /// `get_mail`: the recipient fetches the waiting message, returning the
    /// payload and the SM-recorded sender identity. The mailbox returns to
    /// idle.
    ///
    /// # Errors
    ///
    /// Fails if no message is waiting.
    pub fn get(&mut self) -> SmResult<(Vec<u8>, SenderIdentity)> {
        match std::mem::replace(&mut self.state, MailboxState::Idle) {
            MailboxState::Full { sender, message, .. } => Ok((message, sender)),
            other => {
                self.state = other;
                Err(SmError::MailboxUnavailable)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(byte: u8) -> Measurement {
        Measurement([byte; 32])
    }

    #[test]
    fn accept_send_get_round_trip() {
        let mut mb = Mailbox::new();
        mb.accept(42).unwrap();
        mb.send(42, SenderIdentity::Enclave(measurement(1)), b"hello").unwrap();
        let (msg, sender) = mb.get().unwrap();
        assert_eq!(msg, b"hello");
        assert_eq!(sender, SenderIdentity::Enclave(measurement(1)));
        assert_eq!(*mb.state(), MailboxState::Idle);
    }

    #[test]
    fn unsolicited_send_rejected() {
        let mut mb = Mailbox::new();
        assert_eq!(
            mb.send(42, SenderIdentity::Untrusted, b"spam"),
            Err(SmError::MailNotAccepted)
        );
        mb.accept(42).unwrap();
        // Wrong sender id also rejected (denial-of-service protection).
        assert_eq!(
            mb.send(43, SenderIdentity::Untrusted, b"spam"),
            Err(SmError::MailNotAccepted)
        );
    }

    #[test]
    fn double_send_rejected_until_fetched() {
        let mut mb = Mailbox::new();
        mb.accept(1).unwrap();
        mb.send(1, SenderIdentity::Untrusted, b"first").unwrap();
        assert_eq!(
            mb.send(1, SenderIdentity::Untrusted, b"second"),
            Err(SmError::MailboxUnavailable)
        );
        // accept while full is also rejected.
        assert_eq!(mb.accept(1), Err(SmError::MailboxUnavailable));
        let (msg, _) = mb.get().unwrap();
        assert_eq!(msg, b"first");
    }

    #[test]
    fn get_on_empty_fails_and_preserves_state() {
        let mut mb = Mailbox::new();
        assert_eq!(mb.get(), Err(SmError::MailboxUnavailable));
        mb.accept(7).unwrap();
        assert_eq!(mb.get(), Err(SmError::MailboxUnavailable));
        assert_eq!(*mb.state(), MailboxState::Accepting { expected_sender: 7 });
    }

    #[test]
    fn oversized_message_rejected() {
        let mut mb = Mailbox::new();
        mb.accept(1).unwrap();
        let big = vec![0u8; MAX_MAIL_LEN + 1];
        assert!(matches!(
            mb.send(1, SenderIdentity::Untrusted, &big),
            Err(SmError::InvalidArgument { .. })
        ));
        let exact = vec![0u8; MAX_MAIL_LEN];
        mb.send(1, SenderIdentity::Untrusted, &exact).unwrap();
    }

    #[test]
    fn re_accept_changes_expected_sender() {
        let mut mb = Mailbox::new();
        mb.accept(1).unwrap();
        mb.accept(2).unwrap();
        assert_eq!(
            mb.send(1, SenderIdentity::Untrusted, b"old sender"),
            Err(SmError::MailNotAccepted)
        );
        mb.send(2, SenderIdentity::Untrusted, b"new sender").unwrap();
    }
}
