//! The concurrent soak: real OS threads hammer one shared monitor, with
//! the invariant kernel's checks run at quiescent barriers.
//!
//! The deterministic explorer ([`crate::Explorer`]) interleaves logical
//! hart streams from one host thread — it can replay and shrink, but it can
//! never catch a data race, a lock-order mistake or a lost update, because
//! the monitor only ever sees one thread. The soak closes that gap using
//! the concurrent execution mode of `sanctorum_os::concurrent`: `N` workers
//! on real threads drive disjoint region slices of one monitor, and after
//! every round — with all workers parked at the barrier — the monitor is
//! audited:
//!
//! * **audit ≡ audit_full** — the incremental snapshot must equal a
//!   from-scratch rebuild (a cache desynchronized by a race shows up here);
//! * **resource exclusivity** — no region owned by a dead enclave, every
//!   live enclave owns its windows, occupancy agrees with thread state;
//! * **mail-quota conservation** — the fabric ledger equals the queued
//!   messages, sender by sender.
//!
//! Determinism is *not* asserted across soak runs — thread interleaving is
//! the host scheduler's business. The deterministic single-threaded mode
//! (pinned by `tests/determinism.rs`) stays the replay/differential tool;
//! the soak is the razor for concurrency bugs.

use crate::invariants::mail_quota_conservation;
use sanctorum_core::monitor::AuditSnapshot;
use sanctorum_core::resource::{ResourceId, ResourceState};
use sanctorum_hal::domain::DomainKind;
use sanctorum_machine::MachineConfig;
use sanctorum_os::concurrent::{run_concurrent, ConcurrentConfig, ConcurrentStats};
use sanctorum_os::system::{PlatformKind, System};

pub use sanctorum_os::concurrent::WorkloadProfile;

/// Machine geometry for concurrent runs: many small regions (so every
/// worker gets a disjoint slice spanning all resource shards) and a PMP
/// budget covering all of them (so both backends behave identically).
pub fn concurrent_machine_config() -> MachineConfig {
    MachineConfig {
        memory_size: 8 * 1024 * 1024,
        dram_region_size: 256 * 1024,
        pmp_entries: 40,
        ..MachineConfig::small()
    }
}

/// Result of one soak run.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The platform soaked.
    pub platform: PlatformKind,
    /// Workload counters.
    pub stats: ConcurrentStats,
    /// Quiescent audits performed.
    pub audits: usize,
}

/// Checks the invariants the soak asserts at every quiescent point.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn quiescent_invariants(system: &System) -> Result<(), String> {
    let audit = system.monitor.audit();
    let full = system.monitor.audit_full();
    if audit != full {
        return Err(format!(
            "incremental audit diverged from full rebuild:\n  incremental: {audit:?}\n  full: {full:?}"
        ));
    }
    exclusivity(&audit)?;
    mail_quota_conservation(&audit)?;
    Ok(())
}

/// The soak's subset of the exclusivity invariant (the full kernel also
/// scans memory and registers, which needs the deterministic world's secret
/// bookkeeping; ownership consistency is the part a locking race can break).
fn exclusivity(audit: &AuditSnapshot) -> Result<(), String> {
    for (id, state) in audit.resources.iter() {
        if let (ResourceId::Region(region), ResourceState::Owned(DomainKind::Enclave(eid))) =
            (id, state)
        {
            if audit.enclave(*eid).is_none() {
                return Err(format!("{region} owned by dead enclave {eid}"));
            }
        }
    }
    for enclave in &audit.enclaves {
        for region in &enclave.regions {
            match audit.resource(ResourceId::Region(*region)) {
                Some(ResourceState::Owned(DomainKind::Enclave(owner))) if owner == enclave.id => {}
                other => {
                    return Err(format!(
                        "window {region} of {} is in state {other:?}",
                        enclave.id
                    ))
                }
            }
        }
        if enclave.initialized != enclave.measurement.is_some() {
            return Err(format!(
                "{} initialized={} but measurement present={}",
                enclave.id,
                enclave.initialized,
                enclave.measurement.is_some()
            ));
        }
        let occupied = audit
            .core_occupancy
            .iter()
            .filter(|(_, tid)| enclave.threads.contains(tid))
            .count();
        if occupied != enclave.running_threads {
            return Err(format!(
                "{} claims {} running threads but {} of its threads occupy cores",
                enclave.id, enclave.running_threads, occupied
            ));
        }
    }
    Ok(())
}

/// Runs one soak: boots `platform` with the given locking mode baked into
/// `system`'s config by the caller, drives the concurrent workload, audits
/// at every quiescent barrier, and returns the counters.
///
/// # Errors
///
/// Returns the first invariant violation or worker failure.
pub fn soak(system: &System, config: &ConcurrentConfig) -> Result<SoakReport, String> {
    let mut audits = 0usize;
    let stats = run_concurrent(system, config, |_round| {
        audits += 1;
        quiescent_invariants(system)
    })?;
    Ok(SoakReport {
        platform: system.platform,
        stats,
        audits,
    })
}
