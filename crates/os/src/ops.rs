//! The reified operation model driven by the adversarial explorer.
//!
//! Every interaction a (possibly malicious) OS or enclave can have with the
//! security monitor is expressed as one enumerable [`Op`] value: honest
//! lifecycle traffic (build / run / teardown), raw Fig. 2 resource calls
//! issued out of protocol, mailbox round-trips, probes, batches, and the
//! whole scripted adversary battery ([`AttackKind`]). Ops carry *abstract*
//! selectors (a slot index, a region index, a parameter word) that are
//! resolved against the live world only when the op is applied — so a
//! sequence of ops is meaningful against any world state, which is what makes
//! seeded generation, `(seed, step)` replay and trace shrinking trivial.
//!
//! [`OpWorld`] owns one booted system plus the OS model and applies ops to
//! it, summarizing each step as an [`OpOutcome`] containing only
//! *platform-invariant*, OS-visible facts (status codes, ids, measurements,
//! outcome discriminants — never cycle counts). The differential explorer
//! applies the same trace to a Sanctum world and a Keystone world and
//! requires the outcome streams to be identical modulo declared platform
//! capacity (see `sanctorum_hal::isolation::PlatformCapacity`).

use crate::adversary::AttackKind;
use crate::os::{BuiltEnclave, Os, ThreadRunOutcome};
use crate::system::{PlatformKind, System};
use sanctorum_core::api::{status, status_of, SmApi, SmCall};
use sanctorum_core::error::SmError;
use sanctorum_core::measurement::Measurement;
use sanctorum_core::monitor::PublicField;
use sanctorum_core::resource::ResourceId;
use sanctorum_core::session::CallerSession;
use sanctorum_enclave::image::EnclaveImage;
use sanctorum_hal::addr::VirtAddr;
use sanctorum_hal::domain::{CoreId, DomainKind, EnclaveId};
use sanctorum_hal::isolation::RegionId;
use sanctorum_machine::MachineConfig;

/// Which canned enclave image an [`Op::Build`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ImageKind {
    /// [`EnclaveImage::hello`] carrying a per-build secret.
    Hello,
    /// [`EnclaveImage::compute`] (no secret).
    Compute,
    /// [`EnclaveImage::faulting`] — AEXes through the unhandled-fault arc.
    Faulting,
    /// [`EnclaveImage::fault_handling`] — exercises the enclave-handler arc.
    FaultHandling,
}

impl ImageKind {
    /// Distinctive tag folded into every generated hello secret; the leak
    /// scan looks for full 64-bit matches, so the tag keeps secrets disjoint
    /// from addresses, counters and other innocent register values.
    pub const SECRET_TAG: u64 = 0x5ec2_e700_0000_0000;

    /// Builds the image for this kind. `param` individualizes the image
    /// (hello secret; compute size) and is folded from a small space so
    /// identical recipes recur within a run — that recurrence is what gives
    /// the measurement-determinism invariant something to compare.
    pub fn instantiate(self, param: u64) -> (EnclaveImage, Option<u64>) {
        match self {
            ImageKind::Hello => {
                let secret = Self::SECRET_TAG | (param & 0x7);
                (EnclaveImage::hello(secret), Some(secret))
            }
            ImageKind::Compute => (EnclaveImage::compute(1 + (param as usize & 1), 32), None),
            ImageKind::Faulting => (EnclaveImage::faulting(), None),
            ImageKind::FaultHandling => (EnclaveImage::fault_handling(), None),
        }
    }

    /// The recipe key for the measurement-determinism invariant: images built
    /// from equal keys must measure equally.
    pub fn recipe(self, param: u64) -> (ImageKind, u64) {
        let normalized = match self {
            ImageKind::Hello => param & 0x7,
            ImageKind::Compute => param & 0x1,
            ImageKind::Faulting | ImageKind::FaultHandling => 0,
        };
        (self, normalized)
    }
}

/// One step of explorer traffic. See the module docs for the selector
/// convention: indices are resolved modulo the live population at apply time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Build an enclave of the given image kind.
    Build {
        /// Image flavour.
        kind: ImageKind,
        /// Image parameter (secret / size selector).
        param: u64,
    },
    /// Tear a live enclave down through the full delete → clean → grant path.
    Teardown {
        /// Live-enclave slot selector.
        slot: u64,
    },
    /// Enter a live enclave's main thread on the issuing hart and drive it.
    Run {
        /// Live-enclave slot selector.
        slot: u64,
        /// Guest step budget (small budgets force preemption).
        budget: u64,
    },
    /// Raise a timer interrupt on the issuing hart (the scheduler tick).
    Tick,
    /// Raw `block_resource` on an arbitrary region.
    BlockRegion {
        /// Region selector.
        region: u64,
    },
    /// Raw `clean_resource` on an arbitrary region.
    CleanRegion {
        /// Region selector.
        region: u64,
    },
    /// Raw `grant_resource` of an arbitrary region to the OS or a live
    /// enclave.
    GrantRegion {
        /// Region selector.
        region: u64,
        /// Owner selector: `0` grants to the OS, otherwise to a live enclave.
        owner: u64,
    },
    /// Raw `delete_enclave` without recycling the regions (delete and
    /// forget — the blocked regions stay for later raw cleans).
    DeleteEnclave {
        /// Live-enclave slot selector.
        slot: u64,
    },
    /// `load_page` into an already-initialized enclave (must be refused).
    LoadAfterInit {
        /// Live-enclave slot selector.
        slot: u64,
    },
    /// OS → enclave mail round-trip; the recorded sender identity must be
    /// [`sanctorum_core::mailbox::SenderIdentity::Untrusted`].
    MailRoundTrip {
        /// Recipient slot selector.
        slot: u64,
        /// Payload word.
        payload: u64,
    },
    /// Enclave → enclave mail; the recorded identity must be the sender's
    /// measurement.
    EnclaveMail {
        /// Sender slot selector.
        from: u64,
        /// Recipient slot selector.
        to: u64,
        /// Payload word.
        payload: u64,
    },
    /// Public-field probe; the outcome fingerprints the returned bytes.
    GetField {
        /// Field selector (resolved modulo the selector space + 1, so an
        /// invalid selector is periodically exercised too).
        field: u64,
    },
    /// A typed batch of region-lifecycle probes against one region.
    Batch {
        /// Region selector.
        region: u64,
    },
    /// One attack from the scripted battery.
    Attack {
        /// Battery index (resolved modulo [`AttackKind::ALL`]).
        kind: u64,
        /// Victim slot selector.
        slot: u64,
    },
}

impl Op {
    /// Draws one op from a word source (the explorer's per-hart PRNG
    /// streams). The distribution keeps honest lifecycle traffic dominant so
    /// worlds accumulate enclaves for the adversarial ops to aim at.
    pub fn sample(next: &mut dyn FnMut() -> u64) -> Op {
        match next() % 100 {
            0..=16 => {
                let kind = match next() % 10 {
                    0..=4 => ImageKind::Hello,
                    5..=6 => ImageKind::Compute,
                    7..=8 => ImageKind::Faulting,
                    _ => ImageKind::FaultHandling,
                };
                Op::Build { kind, param: next() }
            }
            17..=25 => Op::Teardown { slot: next() },
            26..=45 => Op::Run { slot: next(), budget: 16 + next() % 512 },
            46..=49 => Op::Tick,
            50..=54 => Op::BlockRegion { region: next() },
            55..=59 => Op::CleanRegion { region: next() },
            60..=64 => Op::GrantRegion { region: next(), owner: next() },
            65..=66 => Op::DeleteEnclave { slot: next() },
            67..=69 => Op::LoadAfterInit { slot: next() },
            70..=76 => Op::MailRoundTrip { slot: next(), payload: next() },
            77..=81 => Op::EnclaveMail { from: next(), to: next(), payload: next() },
            82..=85 => Op::GetField { field: next() },
            86..=89 => Op::Batch { region: next() },
            _ => Op::Attack { kind: next(), slot: next() },
        }
    }

    /// Short label for reports and statistics.
    pub const fn label(&self) -> &'static str {
        match self {
            Op::Build { .. } => "build",
            Op::Teardown { .. } => "teardown",
            Op::Run { .. } => "run",
            Op::Tick => "tick",
            Op::BlockRegion { .. } => "block-region",
            Op::CleanRegion { .. } => "clean-region",
            Op::GrantRegion { .. } => "grant-region",
            Op::DeleteEnclave { .. } => "delete-enclave",
            Op::LoadAfterInit { .. } => "load-after-init",
            Op::MailRoundTrip { .. } => "mail-roundtrip",
            Op::EnclaveMail { .. } => "enclave-mail",
            Op::GetField { .. } => "get-field",
            Op::Batch { .. } => "batch",
            Op::Attack { .. } => "attack",
        }
    }
}

/// The OS-visible, platform-invariant summary of one applied op.
///
/// Two backends driven by the same trace must produce equal outcomes step for
/// step (modulo declared capacity — the explorer's differential policy). The
/// summary deliberately excludes anything platform-variant: cycle counts,
/// flush costs, and entry PCs of resumed threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpOutcome {
    /// The op label (diagnostic).
    pub label: &'static str,
    /// `status::OK`, an error's status code, or [`OpOutcome::SKIPPED`].
    pub status: u64,
    /// Platform-invariant detail word (id, discriminant, fingerprint; 0 when
    /// the call's value is platform-variant).
    pub detail: u64,
    /// The measurement a successful build reported.
    pub measurement: Option<Measurement>,
    /// For mail ops: whether the SM-recorded sender identity matched the
    /// actual sending domain (`None` when no mail was retrieved).
    pub mail_identity_ok: Option<bool>,
    /// For attack ops: whether the attack was blocked.
    pub attack_blocked: Option<bool>,
}

impl OpOutcome {
    /// Status value for ops that resolved to nothing (no live enclave, no
    /// free region): the op was skipped identically on every backend.
    pub const SKIPPED: u64 = u64::MAX;

    fn skipped(label: &'static str) -> Self {
        Self::done(label, Self::SKIPPED, 0)
    }

    fn done(label: &'static str, status: u64, detail: u64) -> Self {
        OpOutcome {
            label,
            status,
            detail,
            measurement: None,
            mail_identity_ok: None,
            attack_blocked: None,
        }
    }

    fn of_result<T>(label: &'static str, result: Result<T, SmError>, detail: impl FnOnce(T) -> u64) -> Self {
        match result {
            Ok(value) => Self::done(label, status::OK, detail(value)),
            Err(err) => Self::done(label, status_of(&err), 0),
        }
    }
}

/// Fingerprints a byte string into an outcome detail word.
pub fn detail_fingerprint(bytes: &[u8]) -> u64 {
    sanctorum_hal::fnv::fnv1a(0, bytes)
}

/// One live enclave tracked by an [`OpWorld`].
#[derive(Debug, Clone)]
pub struct LiveEnclave {
    /// The built enclave.
    pub built: BuiltEnclave,
    /// The hello secret, when the image carries one (drives the leak scan).
    pub secret: Option<u64>,
    /// The build recipe (drives the measurement-determinism invariant).
    pub recipe: (ImageKind, u64),
    /// Base of the enclave's virtual range (for post-init probes).
    pub evrange_base: VirtAddr,
}

/// A booted system + OS model that ops can be applied to.
#[derive(Debug)]
pub struct OpWorld {
    /// The booted system.
    pub system: System,
    /// The (scriptable) OS model.
    pub os: Os,
    /// Live, fully built enclaves, in build order.
    pub live: Vec<LiveEnclave>,
}

impl OpWorld {
    /// Boots a world on `platform` with the given machine configuration and
    /// default monitor configuration.
    pub fn boot(platform: PlatformKind, config: MachineConfig) -> Self {
        let system = System::boot(
            platform,
            config,
            sanctorum_core::monitor::SmConfig::default(),
        );
        let os = Os::new(&system);
        OpWorld {
            system,
            os,
            live: Vec::new(),
        }
    }

    /// All hello secrets currently loaded into live enclaves.
    pub fn live_secrets(&self) -> impl Iterator<Item = u64> + '_ {
        self.live.iter().filter_map(|e| e.secret)
    }

    fn slot(&self, selector: u64) -> Option<usize> {
        if self.live.is_empty() {
            None
        } else {
            Some((selector % self.live.len() as u64) as usize)
        }
    }

    fn region(&self, selector: u64) -> RegionId {
        RegionId::new((selector % self.system.machine.config().num_regions() as u64) as u32)
    }

    fn forget_if_dead(&mut self, eid: EnclaveId) {
        if !self.system.monitor.enclaves().contains(&eid) {
            self.live.retain(|e| e.built.eid != eid);
        }
    }

    /// Applies one op issued from `hart`, returning its outcome summary.
    /// Ops whose selectors resolve to nothing (no live enclave, no free
    /// region) are skipped; everything else maps onto SM API calls.
    pub fn apply(&mut self, hart: CoreId, op: &Op) -> OpOutcome {
        let label = op.label();
        let os_session = CallerSession::os();
        match op {
            Op::Build { kind, param } => {
                if self.os.free_region_count() == 0 {
                    return OpOutcome::skipped(label);
                }
                let (image, secret) = kind.instantiate(*param);
                let evrange_base = image.evrange_base;
                match self.os.build_enclave(&image, 1) {
                    Ok(built) => {
                        let mut outcome =
                            OpOutcome::done(label, status::OK, built.eid.as_u64());
                        outcome.measurement = Some(built.measurement);
                        self.live.push(LiveEnclave {
                            built,
                            secret,
                            recipe: kind.recipe(*param),
                            evrange_base,
                        });
                        outcome
                    }
                    Err(err) => OpOutcome::done(label, status_of(&err), 0),
                }
            }
            Op::Teardown { slot } => {
                let Some(index) = self.slot(*slot) else {
                    return OpOutcome::skipped(label);
                };
                let built = self.live[index].built.clone();
                let result = self.os.teardown_enclave(&built);
                self.forget_if_dead(built.eid);
                OpOutcome::of_result(label, result, |_| 0)
            }
            Op::Run { slot, budget } => {
                let Some(index) = self.slot(*slot) else {
                    return OpOutcome::skipped(label);
                };
                let built = self.live[index].built.clone();
                let tid = built.main_thread();
                let result = self.os.run_thread(&built, tid, hart, *budget);
                OpOutcome::of_result(label, result, |outcome| match outcome {
                    ThreadRunOutcome::Exited { .. } => 1,
                    ThreadRunOutcome::Interrupted { .. } => 2,
                    ThreadRunOutcome::Faulted { .. } => 3,
                    ThreadRunOutcome::Preempted => 4,
                })
            }
            Op::Tick => {
                let result = self.os.tick(hart);
                OpOutcome::of_result(label, result, |descheduled| descheduled as u64)
            }
            Op::BlockRegion { region } => {
                let id = ResourceId::Region(self.region(*region));
                OpOutcome::of_result(
                    label,
                    self.system.monitor.block_resource(os_session, id),
                    |_| 0,
                )
            }
            Op::CleanRegion { region } => {
                let id = ResourceId::Region(self.region(*region));
                // The cleaning cost is platform-variant; only the status is
                // comparable.
                OpOutcome::of_result(
                    label,
                    self.system.monitor.clean_resource(os_session, id),
                    |_| 0,
                )
            }
            Op::GrantRegion { region, owner } => {
                let id = ResourceId::Region(self.region(*region));
                let new_owner = match self.slot(*owner) {
                    Some(index) if *owner % (self.live.len() as u64 + 1) != 0 => {
                        DomainKind::Enclave(self.live[index].built.eid)
                    }
                    _ => DomainKind::Untrusted,
                };
                OpOutcome::of_result(
                    label,
                    self.system.monitor.grant_resource(os_session, id, new_owner),
                    |_| 0,
                )
            }
            Op::DeleteEnclave { slot } => {
                let Some(index) = self.slot(*slot) else {
                    return OpOutcome::skipped(label);
                };
                let eid = self.live[index].built.eid;
                let result = self.system.monitor.delete_enclave(os_session, eid);
                self.forget_if_dead(eid);
                OpOutcome::of_result(label, result, |_| 0)
            }
            Op::LoadAfterInit { slot } => {
                let Some(index) = self.slot(*slot) else {
                    return OpOutcome::skipped(label);
                };
                let entry = &self.live[index];
                let result = self.system.monitor.load_page(
                    os_session,
                    entry.built.eid,
                    entry.evrange_base,
                    self.os.staging_base(),
                    sanctorum_hal::perm::MemPerms::RW,
                );
                OpOutcome::of_result(label, result, |p| p.as_u64())
            }
            Op::MailRoundTrip { slot, payload } => {
                let Some(index) = self.slot(*slot) else {
                    return OpOutcome::skipped(label);
                };
                let eid = self.live[index].built.eid;
                self.mail_exchange(label, None, eid, *payload)
            }
            Op::EnclaveMail { from, to, payload } => {
                let (Some(from_index), Some(to_index)) = (self.slot(*from), self.slot(*to))
                else {
                    return OpOutcome::skipped(label);
                };
                let sender = self.live[from_index].built.eid;
                let recipient = self.live[to_index].built.eid;
                self.mail_exchange(label, Some(sender), recipient, *payload)
            }
            Op::GetField { field } => {
                let selector = field % 5;
                match PublicField::from_selector(selector) {
                    Some(field) => {
                        let bytes = self.system.monitor.get_field(os_session, field);
                        OpOutcome::done(label, status::OK, detail_fingerprint(&bytes))
                    }
                    None => OpOutcome::done(
                        label,
                        status_of(&SmError::InvalidArgument { reason: "unknown field" }),
                        0,
                    ),
                }
            }
            Op::Batch { region } => {
                let region = self.region(*region);
                let calls = vec![
                    SmCall::GetField { field: 3 },
                    SmCall::BlockRegion { region },
                    SmCall::CleanRegion { region },
                    SmCall::GrantRegion { region, owner_eid: 0 },
                    SmCall::GetField { field: 0 },
                ];
                match self.system.monitor.batch(os_session, &calls) {
                    Ok(outcomes) => {
                        // Per-entry statuses are platform-invariant; values
                        // (lengths vs cycle counts) are not, so only the
                        // status stream is fingerprinted.
                        let statuses: Vec<u8> = outcomes
                            .iter()
                            .flat_map(|o| o.status.to_le_bytes())
                            .collect();
                        OpOutcome::done(label, status::OK, detail_fingerprint(&statuses))
                    }
                    Err(err) => OpOutcome::done(label, status_of(&err), 0),
                }
            }
            Op::Attack { kind, slot } => {
                let kind = AttackKind::ALL[(*kind % AttackKind::ALL.len() as u64) as usize];
                if kind.builds_own_enclave() && self.os.free_region_count() == 0 {
                    return OpOutcome::skipped(label);
                }
                let Some(index) = self.slot(*slot) else {
                    return OpOutcome::skipped(label);
                };
                let victim = self.live[index].built.clone();
                match kind.run(&self.system, &mut self.os, &victim, &victim, hart) {
                    Ok(outcome) => {
                        let mut summary = OpOutcome::done(label, status::OK, 0);
                        summary.attack_blocked = Some(outcome.blocked());
                        summary
                    }
                    Err(err) => OpOutcome::done(label, status_of(&err), 0),
                }
            }
        }
    }

    /// Drives one accept → send → get mail exchange and records whether the
    /// SM-attributed sender identity matches the actual sender.
    fn mail_exchange(
        &mut self,
        label: &'static str,
        sender: Option<EnclaveId>,
        recipient: EnclaveId,
        payload: u64,
    ) -> OpOutcome {
        use sanctorum_core::mailbox::SenderIdentity;
        let recipient_session = CallerSession::enclave(recipient);
        let sender_session = match sender {
            Some(eid) => CallerSession::enclave(eid),
            None => CallerSession::os(),
        };
        let sender_id = sender.map(|e| e.as_u64()).unwrap_or(0);
        if let Err(err) = self
            .system
            .monitor
            .accept_mail(recipient_session, 0, sender_id)
        {
            return OpOutcome::done(label, status_of(&err), 1);
        }
        if let Err(err) =
            self.system
                .monitor
                .send_mail(sender_session, recipient, &payload.to_le_bytes())
        {
            return OpOutcome::done(label, status_of(&err), 2);
        }
        match self.system.monitor.get_mail(recipient_session, 0) {
            Ok((bytes, identity)) => {
                let identity_ok = match (&identity, sender) {
                    (SenderIdentity::Untrusted, None) => true,
                    (SenderIdentity::Enclave(m), Some(eid)) => self
                        .live
                        .iter()
                        .find(|e| e.built.eid == eid)
                        .map(|e| e.built.measurement == *m)
                        .unwrap_or(false),
                    _ => false,
                };
                let mut outcome = OpOutcome::done(
                    label,
                    status::OK,
                    detail_fingerprint(&bytes),
                );
                outcome.mail_identity_ok = Some(identity_ok);
                outcome
            }
            Err(err) => OpOutcome::done(label, status_of(&err), 3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn sampling_is_deterministic_and_covers_the_op_space() {
        let mut a = words(7);
        let mut b = words(7);
        let ops_a: Vec<Op> = (0..500).map(|_| Op::sample(&mut a)).collect();
        let ops_b: Vec<Op> = (0..500).map(|_| Op::sample(&mut b)).collect();
        assert_eq!(ops_a, ops_b);
        let labels: std::collections::BTreeSet<&str> =
            ops_a.iter().map(|o| o.label()).collect();
        assert!(labels.len() >= 12, "got only {labels:?}");
    }

    #[test]
    fn skipped_ops_report_the_skip_status() {
        let mut world = OpWorld::boot(PlatformKind::Sanctum, MachineConfig::small());
        let outcome = world.apply(CoreId::new(0), &Op::Teardown { slot: 3 });
        assert_eq!(outcome.status, OpOutcome::SKIPPED);
        let outcome = world.apply(CoreId::new(0), &Op::Run { slot: 0, budget: 100 });
        assert_eq!(outcome.status, OpOutcome::SKIPPED);
    }

    #[test]
    fn build_run_teardown_round_trips_through_ops() {
        let mut world = OpWorld::boot(PlatformKind::Sanctum, MachineConfig::small());
        let hart = CoreId::new(0);
        let built = world.apply(hart, &Op::Build { kind: ImageKind::Hello, param: 3 });
        assert_eq!(built.status, status::OK);
        assert!(built.measurement.is_some());
        assert_eq!(world.live.len(), 1);
        assert_eq!(world.live_secrets().count(), 1);

        let ran = world.apply(hart, &Op::Run { slot: 0, budget: 10_000 });
        assert_eq!((ran.status, ran.detail), (status::OK, 1), "exited");

        let mail = world.apply(hart, &Op::MailRoundTrip { slot: 0, payload: 9 });
        assert_eq!(mail.status, status::OK);
        assert_eq!(mail.mail_identity_ok, Some(true));

        let torn = world.apply(hart, &Op::Teardown { slot: 0 });
        assert_eq!(torn.status, status::OK);
        assert!(world.live.is_empty());
    }

    #[test]
    fn attacks_through_ops_are_blocked() {
        let mut world = OpWorld::boot(PlatformKind::Sanctum, MachineConfig::small());
        let hart = CoreId::new(0);
        world.apply(hart, &Op::Build { kind: ImageKind::Hello, param: 1 });
        for kind in 0..AttackKind::ALL.len() as u64 {
            let outcome = world.apply(hart, &Op::Attack { kind, slot: 0 });
            assert_eq!(outcome.status, status::OK, "attack {kind} errored");
            assert_eq!(outcome.attack_blocked, Some(true), "attack {kind} succeeded");
        }
    }
}
