//! Remote attestation end to end (paper Fig. 7): a remote verifier attests an
//! enclave via the signing enclave, then exchanges protected messages with it
//! over the attested channel.
//!
//! Run with: `cargo run -p sanctorum-bench --example remote_attestation`

use sanctorum_bench::boot_attestation_setup;
use sanctorum_enclave::client::AttestationClient;
use sanctorum_enclave::signing::SigningEnclave;
use sanctorum_os::system::PlatformKind;
use sanctorum_verifier::{ManufacturerCa, RemoteVerifier, SecureSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Manufacturing time: the CA provisions the device and issues its
    // certificate.
    let ca = ManufacturerCa::new([0x11; 32]);

    // Runtime: boot a system whose SM trusts the signing enclave, and load
    // both the signing enclave and the enclave to be attested (E1).
    let (system, _os, client_enclave, signing_enclave) =
        boot_attestation_setup(PlatformKind::Sanctum);
    let device_certificate = ca.certify_device(system.machine.root_of_trust());

    // The remote verifier pins the manufacturer root and the measurement it
    // expects for E1.
    let verifier = RemoteVerifier::new(
        ca.root_public_key(),
        vec![client_enclave.measurement],
        [0x42; 32],
    );

    // ①–② Key agreement setup and nonce.
    let challenge = verifier.begin();
    println!("verifier nonce        : {}", sanctorum_crypto::sha3::to_hex(&challenge.nonce));

    // ③–⑦ The enclave obtains its attestation through the signing enclave.
    let sm = system.monitor.as_ref();
    let signing = SigningEnclave::new(signing_enclave.eid);
    let client = AttestationClient::new(client_enclave.eid, system.machine.trng_bytes());
    let response = client.obtain_attestation(sm, &signing, challenge.nonce, device_certificate)?;
    println!(
        "attested measurement  : {}",
        response.evidence.report.enclave_measurement
    );

    // ⑧–⑨ The verifier checks the evidence and derives the session key.
    let mut verifier_session = verifier.verify(&response.evidence, &response.enclave_dh_public)?;
    println!("attestation accepted by the remote verifier");

    // ⑩ Protected application traffic in both directions.
    let shared = client.shared_secret(&challenge.verifier_dh_public);
    let mut enclave_session = SecureSession::new(&shared, &challenge.nonce);
    let to_enclave = verifier_session.seal(b"what is the answer?");
    let query = enclave_session.open(&to_enclave)?;
    println!("enclave received query: {}", String::from_utf8_lossy(&query));
    let reply = enclave_session.seal(b"42");
    let answer = verifier_session.open(&reply)?;
    println!("verifier received     : {}", String::from_utf8_lossy(&answer));
    Ok(())
}
