//! Trap and interrupt causes.
//!
//! Every event the security monitor interposes on (paper Fig. 1) is modelled
//! as a [`TrapCause`] raised by a hart: SM API calls are environment calls
//! from S- or U-mode, enclave faults are page faults, and the OS de-schedules
//! enclaves by sending interrupts.

use sanctorum_hal::addr::VirtAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Interrupt sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interrupt {
    /// Machine/supervisor timer interrupt (the OS scheduling tick).
    Timer,
    /// Software interrupt (inter-processor interrupt, e.g. TLB shootdown or
    /// forced de-schedule).
    Software,
    /// External device interrupt.
    External,
}

/// The kind of memory access that faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Instruction fetch.
    Fetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Fetch => write!(f, "fetch"),
            AccessKind::Load => write!(f, "load"),
            AccessKind::Store => write!(f, "store"),
        }
    }
}

/// The cause of a trap taken by a hart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrapCause {
    /// An asynchronous interrupt.
    Interrupt(Interrupt),
    /// A page fault: the page-table walk failed or permissions were missing.
    PageFault {
        /// The kind of access that faulted.
        kind: AccessKind,
        /// Faulting virtual address.
        addr: VirtAddr,
    },
    /// A physical access violated the isolation primitive (Sanctum region /
    /// PMP check). Kept distinct from ordinary page faults because the SM
    /// treats it as a potential attack rather than a paging event.
    IsolationFault {
        /// The kind of access that faulted.
        kind: AccessKind,
        /// Faulting virtual address.
        addr: VirtAddr,
    },
    /// An environment call (`ecall`) into the security monitor.
    EnvironmentCall,
    /// An illegal or unsupported instruction.
    IllegalInstruction,
}

impl TrapCause {
    /// Returns `true` if the cause is an interrupt (asynchronous).
    pub fn is_interrupt(&self) -> bool {
        matches!(self, TrapCause::Interrupt(_))
    }

    /// Returns `true` if this trap is one an enclave may be allowed to handle
    /// itself (paper Section V-A: enclaves can implement fault handlers for
    /// page faults and similar synchronous exceptions).
    pub fn enclave_handleable(&self) -> bool {
        matches!(self, TrapCause::PageFault { .. } | TrapCause::IllegalInstruction)
    }
}

impl fmt::Display for TrapCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapCause::Interrupt(Interrupt::Timer) => write!(f, "timer interrupt"),
            TrapCause::Interrupt(Interrupt::Software) => write!(f, "software interrupt"),
            TrapCause::Interrupt(Interrupt::External) => write!(f, "external interrupt"),
            TrapCause::PageFault { kind, addr } => write!(f, "{kind} page fault at {addr}"),
            TrapCause::IsolationFault { kind, addr } => {
                write!(f, "{kind} isolation fault at {addr}")
            }
            TrapCause::EnvironmentCall => write!(f, "environment call"),
            TrapCause::IllegalInstruction => write!(f, "illegal instruction"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interrupt_predicate() {
        assert!(TrapCause::Interrupt(Interrupt::Timer).is_interrupt());
        assert!(!TrapCause::EnvironmentCall.is_interrupt());
    }

    #[test]
    fn enclave_handleable_classification() {
        assert!(TrapCause::PageFault {
            kind: AccessKind::Load,
            addr: VirtAddr::new(0x1000)
        }
        .enclave_handleable());
        assert!(TrapCause::IllegalInstruction.enclave_handleable());
        assert!(!TrapCause::Interrupt(Interrupt::Timer).enclave_handleable());
        assert!(!TrapCause::EnvironmentCall.enclave_handleable());
        assert!(!TrapCause::IsolationFault {
            kind: AccessKind::Store,
            addr: VirtAddr::new(0)
        }
        .enclave_handleable());
    }

    #[test]
    fn display_formats() {
        let c = TrapCause::PageFault {
            kind: AccessKind::Store,
            addr: VirtAddr::new(0xdead),
        };
        assert_eq!(format!("{c}"), "store page fault at VA 0xdead");
        assert_eq!(format!("{}", TrapCause::EnvironmentCall), "environment call");
    }
}
