//! Per-hart id allocation with batched refill from a shared pool.
//!
//! Thread ids used to come from one shared atomic counter. That is correct,
//! but under the mutation-heavy scaling workload every `load_thread` /
//! `create_thread` on every hart hits the same cache line, and — worse —
//! freed ids were never recycled, so the id space only ever grew. The
//! [`IdAllocator`] keeps a small per-hart cache of ready ids in front of a
//! shared pool: allocation and free normally touch only the calling hart's
//! own cache slot (lock rank `ID_SLOT`), and only a refill or a spill takes
//! the shared pool (rank `ID_POOL`, acquired strictly above the slot).
//!
//! **Determinism.** With `batch == 1` the allocator collapses to the legacy
//! discipline bit-for-bit: every allocation comes straight from the pool's
//! monotone counter and [`IdAllocator::free`] discards the id — no reuse,
//! no per-hart state — so single-threaded replays (the pinned determinism
//! digests) are unchanged. Batching (and with it id reuse) is an explicit
//! opt-in through [`crate::monitor::SmConfig::id_batch`]; a single-threaded
//! run with any fixed batch size is still deterministic (the refill order
//! is a pure function of the alloc/free sequence), which the id-reuse
//! replay test below pins.

use crate::lockorder::{rank, OrderedMutex};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of per-hart cache slots. Collisions (two host threads mapping to
/// one slot) are safe — slots are mutexes — and merely shed the contention
/// win, so a small fixed count suffices.
const ID_SLOTS: usize = 8;

/// Process-global source of per-thread slot indices.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The calling thread's stable slot index, assigned on first use.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// The shared id pool: a monotone counter plus the free list spilled back
/// from the per-hart caches.
#[derive(Debug)]
struct IdPool {
    /// Next never-issued id.
    next: u64,
    /// One past the last issuable id (`None` = unbounded).
    end: Option<u64>,
    /// Ids freed back from the caches, reissued before fresh ones.
    recycled: Vec<u64>,
}

/// One hart's private cache of ready ids.
#[derive(Debug, Default)]
struct IdSlot {
    ready: Vec<u64>,
}

/// A batched, per-hart id allocator (see the module docs).
#[derive(Debug)]
pub struct IdAllocator {
    /// Ids handed to a cache per refill; `1` = legacy pass-through mode.
    batch: usize,
    /// Per-hart caches, all at rank `ID_SLOT` (only one is ever held at a
    /// time, and always below the pool).
    slots: Vec<OrderedMutex<IdSlot>>,
    /// The shared pool, rank `ID_POOL`.
    pool: OrderedMutex<IdPool>,
}

impl IdAllocator {
    /// Creates an unbounded allocator issuing ids from `base` upward,
    /// refilling per-hart caches `batch` ids at a time.
    pub fn new(base: u64, batch: usize) -> Self {
        Self::bounded(base, None, batch)
    }

    /// Creates an allocator limited to `capacity` ids (for exhaustion
    /// testing and capped id spaces). `None` capacity is unbounded.
    pub fn bounded(base: u64, capacity: Option<u64>, batch: usize) -> Self {
        Self {
            batch: batch.max(1),
            slots: (0..ID_SLOTS)
                .map(|_| OrderedMutex::new(rank::ID_SLOT, IdSlot::default()))
                .collect(),
            pool: OrderedMutex::new(
                rank::ID_POOL,
                IdPool {
                    next: base,
                    end: capacity.map(|c| base + c),
                    recycled: Vec::new(),
                },
            ),
        }
    }

    /// The configured refill batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The calling thread's cache slot.
    fn slot(&self) -> &OrderedMutex<IdSlot> {
        let index = THREAD_SLOT.with(|slot| *slot);
        &self.slots[index % self.slots.len()]
    }

    /// Draws up to `want` ids from the pool (recycled ids first, then fresh
    /// ones) into `into`. Returns how many were obtained.
    fn refill(pool: &mut IdPool, want: usize, into: &mut Vec<u64>) -> usize {
        let mut got = 0;
        while got < want {
            if let Some(id) = pool.recycled.pop() {
                into.push(id);
                got += 1;
                continue;
            }
            if pool.end.is_some_and(|end| pool.next >= end) {
                break;
            }
            into.push(pool.next);
            pool.next += 1;
            got += 1;
        }
        got
    }

    /// Allocates one id, or `None` if the bounded id space is exhausted
    /// (every unissued and recycled id is in use).
    pub fn alloc(&self) -> Option<u64> {
        if self.batch == 1 {
            // Legacy discipline: straight off the monotone counter.
            let mut pool = self.pool.lock();
            let mut one = Vec::with_capacity(1);
            return (Self::refill(&mut pool, 1, &mut one) == 1).then(|| one[0]);
        }
        let mut slot = self.slot().lock();
        if let Some(id) = slot.ready.pop() {
            return Some(id);
        }
        let mut pool = self.pool.lock();
        if Self::refill(&mut pool, self.batch, &mut slot.ready) == 0 {
            // The pool is dry, but another hart's cache may be hoarding
            // ready ids: reclaim them all so exhaustion means *globally*
            // exhausted, not unluckily sharded. The other slots rank equal
            // to ours, so they are drained after our guards drop.
            drop(pool);
            drop(slot);
            let mut reclaimed = false;
            for other in &self.slots {
                let drained: Vec<u64> = std::mem::take(&mut other.lock().ready);
                if !drained.is_empty() {
                    reclaimed = true;
                    self.pool.lock().recycled.extend(drained);
                }
            }
            if !reclaimed {
                return None;
            }
            let mut slot = self.slot().lock();
            let mut pool = self.pool.lock();
            if Self::refill(&mut pool, self.batch, &mut slot.ready) == 0 {
                return None;
            }
            drop(pool);
            return slot.ready.pop();
        }
        drop(pool);
        slot.ready.pop()
    }

    /// Returns `id` to the allocator. In legacy mode (`batch == 1`) the id
    /// is discarded — ids are never reused, preserving the historical
    /// monotone sequence; otherwise it lands in the calling hart's cache,
    /// spilling half the cache back to the shared pool beyond `2 × batch`.
    pub fn free(&self, id: u64) {
        if self.batch == 1 {
            return;
        }
        let mut slot = self.slot().lock();
        slot.ready.push(id);
        if slot.ready.len() > 2 * self.batch {
            let keep = self.batch;
            let spill: Vec<u64> = slot.ready.split_off(keep);
            self.pool.lock().recycled.extend(spill);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_mode_is_the_monotone_counter() {
        let alloc = IdAllocator::new(0x1000, 1);
        assert_eq!(alloc.alloc(), Some(0x1000));
        assert_eq!(alloc.alloc(), Some(0x1001));
        alloc.free(0x1000);
        // Freed ids are discarded: the next id is still fresh.
        assert_eq!(alloc.alloc(), Some(0x1002));
    }

    #[test]
    fn bounded_pool_exhausts_and_batched_refill_recovers_frees() {
        let alloc = IdAllocator::bounded(100, Some(4), 2);
        let mut taken: Vec<u64> = (0..4).map(|_| alloc.alloc().expect("within capacity")).collect();
        taken.sort_unstable();
        assert_eq!(taken, vec![100, 101, 102, 103]);
        assert_eq!(alloc.alloc(), None, "capacity 4 means exactly 4 live ids");
        // Freeing re-enables allocation through the recycle path.
        alloc.free(101);
        assert_eq!(alloc.alloc(), Some(101));
        assert_eq!(alloc.alloc(), None);
    }

    #[test]
    fn exhaustion_reclaims_ids_stranded_in_other_caches() {
        // Batch 3 over capacity 3: the first alloc pulls all three ids into
        // this thread's cache. Free two, exhaust, and allocation must still
        // find the cached ids rather than reporting a dry pool.
        let alloc = IdAllocator::bounded(7, Some(3), 3);
        let a = alloc.alloc().expect("first");
        let b = alloc.alloc().expect("second");
        let c = alloc.alloc().expect("third");
        assert_eq!(alloc.alloc(), None);
        alloc.free(b);
        alloc.free(c);
        assert!(alloc.alloc().is_some());
        assert!(alloc.alloc().is_some());
        assert_eq!(alloc.alloc(), None);
        alloc.free(a);
        assert_eq!(alloc.alloc(), Some(a));
    }

    #[test]
    fn id_reuse_is_deterministic_under_single_threaded_replay() {
        // The same alloc/free script against two fresh batched allocators
        // must produce the same id sequence — the property that keeps a
        // batched single-threaded replay bit-identical run to run.
        fn script(alloc: &IdAllocator) -> Vec<u64> {
            let mut out = Vec::new();
            let mut live = Vec::new();
            for step in 0..200u64 {
                if step % 3 == 2 && !live.is_empty() {
                    let id = live.remove((step as usize * 7) % live.len());
                    alloc.free(id);
                } else {
                    let id = alloc.alloc().expect("unbounded");
                    out.push(id);
                    live.push(id);
                }
            }
            out
        }
        let first = script(&IdAllocator::new(0x1000, 16));
        let second = script(&IdAllocator::new(0x1000, 16));
        assert_eq!(first, second);
        assert!(
            first.iter().any(|id| first.iter().filter(|x| *x == id).count() > 1),
            "the script must actually exercise reuse"
        );
    }

    #[test]
    fn concurrent_soak_never_has_one_id_live_on_two_harts() {
        use std::collections::HashSet;
        use std::sync::{Arc, Mutex};
        let alloc = Arc::new(IdAllocator::new(0, 8));
        let live = Arc::new(Mutex::new(HashSet::new()));
        let mut workers = Vec::new();
        for worker in 0..4u64 {
            let alloc = Arc::clone(&alloc);
            let live = Arc::clone(&live);
            workers.push(std::thread::spawn(move || {
                let mut held: Vec<u64> = Vec::new();
                for step in 0..2000u64 {
                    if (step + worker) % 3 == 0 && !held.is_empty() {
                        let id = held.swap_remove((step as usize) % held.len());
                        assert!(live.lock().unwrap().remove(&id), "freed id was not live");
                        alloc.free(id);
                    } else {
                        let id = alloc.alloc().expect("unbounded");
                        assert!(
                            live.lock().unwrap().insert(id),
                            "id {id} handed to two harts at once"
                        );
                        held.push(id);
                    }
                }
                for id in held {
                    assert!(live.lock().unwrap().remove(&id));
                    alloc.free(id);
                }
            }));
        }
        for worker in workers {
            worker.join().expect("soak worker");
        }
        assert!(live.lock().unwrap().is_empty());
    }
}
