//! Protection-domain and core identifiers.
//!
//! The paper partitions all software into three kinds of protection domains:
//! the security monitor itself, the untrusted system software (OS, hypervisor,
//! devices acting on its behalf), and each individual enclave
//! (paper Section V-B). Machine resources are always owned by exactly one
//! domain.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of a hardware thread (hart / core) in the simulated machine.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CoreId(pub u32);

impl CoreId {
    /// Creates a core identifier.
    pub const fn new(id: u32) -> Self {
        Self(id)
    }

    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Opaque identifier of an enclave, as used by the SM API.
///
/// In the paper an enclave id is the physical address of the enclave's
/// metadata structure inside SM-owned memory (Section V-C); this crate only
/// needs it as an opaque token, so the concrete encoding is chosen by
/// `sanctorum-core`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct EnclaveId(pub u64);

impl EnclaveId {
    /// Creates an enclave identifier from its raw (metadata-address) value.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EnclaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "enclave {:#x}", self.0)
    }
}

/// The kind of protection domain a resource or a running core belongs to.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum DomainKind {
    /// The security monitor itself (highest privilege).
    SecurityMonitor,
    /// The untrusted operating system / hypervisor and devices it controls.
    Untrusted,
    /// A specific enclave.
    Enclave(EnclaveId),
}

impl DomainKind {
    /// Returns `true` if the domain is an enclave domain.
    pub const fn is_enclave(self) -> bool {
        matches!(self, DomainKind::Enclave(_))
    }

    /// Returns the enclave id if this is an enclave domain.
    pub const fn enclave_id(self) -> Option<EnclaveId> {
        match self {
            DomainKind::Enclave(id) => Some(id),
            _ => None,
        }
    }
}

impl fmt::Display for DomainKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainKind::SecurityMonitor => write!(f, "SM"),
            DomainKind::Untrusted => write!(f, "untrusted"),
            DomainKind::Enclave(id) => write!(f, "{id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enclave_id_round_trip() {
        let id = EnclaveId::new(0x8020_0000);
        assert_eq!(id.as_u64(), 0x8020_0000);
        assert_eq!(format!("{id}"), "enclave 0x80200000");
    }

    #[test]
    fn domain_kind_predicates() {
        let e = DomainKind::Enclave(EnclaveId::new(7));
        assert!(e.is_enclave());
        assert_eq!(e.enclave_id(), Some(EnclaveId::new(7)));
        assert!(!DomainKind::Untrusted.is_enclave());
        assert_eq!(DomainKind::SecurityMonitor.enclave_id(), None);
    }

    #[test]
    fn domain_display() {
        assert_eq!(format!("{}", DomainKind::SecurityMonitor), "SM");
        assert_eq!(format!("{}", DomainKind::Untrusted), "untrusted");
        assert_eq!(format!("{}", CoreId::new(3)), "core3");
    }

    #[test]
    fn domain_ordering_is_total() {
        let mut v = [DomainKind::Enclave(EnclaveId::new(2)),
            DomainKind::SecurityMonitor,
            DomainKind::Untrusted,
            DomainKind::Enclave(EnclaveId::new(1))];
        v.sort();
        assert_eq!(v[0], DomainKind::SecurityMonitor);
        assert_eq!(v[1], DomainKind::Untrusted);
    }
}
