//! Architected state of one hardware thread (hart).

use crate::trap::TrapCause;
use sanctorum_hal::addr::PhysAddr;
use sanctorum_hal::cycles::Cycles;
use sanctorum_hal::domain::{CoreId, DomainKind};
use serde::{Deserialize, Serialize};

/// RISC-V-style privilege levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PrivilegeLevel {
    /// User mode (enclave or untrusted application code).
    User,
    /// Supervisor mode (the untrusted OS).
    Supervisor,
    /// Machine mode (the security monitor).
    Machine,
}

/// Number of general-purpose registers modelled per hart.
pub const NUM_REGS: usize = 32;

/// The full architected state of a hart.
///
/// The security monitor saves and restores this structure on enclave entry,
/// exit and asynchronous enclave exit (AEX), and zeroes it when the core is
/// re-assigned to another protection domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HartState {
    /// This hart's identifier.
    pub id: CoreId,
    /// General-purpose registers.
    pub regs: [u64; NUM_REGS],
    /// Program counter — for abstract guest programs this is the index of the
    /// next [`crate::guest::GuestOp`] to execute.
    pub pc: u64,
    /// Current privilege level.
    pub privilege: PrivilegeLevel,
    /// Protection domain on whose behalf the hart currently executes.
    pub domain: DomainKind,
    /// Root page table in use (the `satp` analogue); `None` disables
    /// translation (machine-mode physical addressing).
    pub page_table_root: Option<PhysAddr>,
    /// Pending trap cause recorded by the last execution step.
    pub pending_trap: Option<TrapCause>,
    /// Cycle counter for this hart.
    pub cycles: Cycles,
}

impl HartState {
    /// Creates a hart in machine mode, owned by the SM domain, with all
    /// registers zeroed.
    pub fn new(id: CoreId) -> Self {
        Self {
            id,
            regs: [0; NUM_REGS],
            pc: 0,
            privilege: PrivilegeLevel::Machine,
            domain: DomainKind::SecurityMonitor,
            page_table_root: None,
            pending_trap: None,
            cycles: Cycles::ZERO,
        }
    }

    /// Zeroes all architected state that could leak information to the next
    /// protection domain scheduled on this core. The paper calls this
    /// "cleaning" the core resource (Section V-C); it preserves the hart id
    /// and cycle counter, which are not secret.
    pub fn clean(&mut self) {
        self.regs = [0; NUM_REGS];
        self.pc = 0;
        self.page_table_root = None;
        self.pending_trap = None;
        self.privilege = PrivilegeLevel::Machine;
        self.domain = DomainKind::SecurityMonitor;
    }

    /// Captures the register file and program counter for an AEX state dump.
    pub fn snapshot(&self) -> HartSnapshot {
        HartSnapshot {
            regs: self.regs,
            pc: self.pc,
            page_table_root: self.page_table_root,
        }
    }

    /// Restores a previously captured snapshot (enclave resume after AEX).
    pub fn restore(&mut self, snapshot: &HartSnapshot) {
        self.regs = snapshot.regs;
        self.pc = snapshot.pc;
        self.page_table_root = snapshot.page_table_root;
    }

    /// Returns `true` if no architected state from a previous occupant is
    /// visible (registers and PC zero, no address space installed).
    pub fn is_clean(&self) -> bool {
        self.regs.iter().all(|&r| r == 0)
            && self.pc == 0
            && self.page_table_root.is_none()
            && self.pending_trap.is_none()
    }
}

/// A saved register-file snapshot (the AEX state dump of paper Section V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HartSnapshot {
    /// Saved general-purpose registers.
    pub regs: [u64; NUM_REGS],
    /// Saved program counter.
    pub pc: u64,
    /// Saved address-space root.
    pub page_table_root: Option<PhysAddr>,
}

impl Default for HartSnapshot {
    fn default() -> Self {
        Self {
            regs: [0; NUM_REGS],
            pc: 0,
            page_table_root: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_hal::domain::EnclaveId;

    #[test]
    fn new_hart_is_clean() {
        let hart = HartState::new(CoreId::new(0));
        assert!(hart.is_clean());
        assert_eq!(hart.privilege, PrivilegeLevel::Machine);
    }

    #[test]
    fn clean_erases_visible_state() {
        let mut hart = HartState::new(CoreId::new(1));
        hart.regs[5] = 0xdeadbeef;
        hart.pc = 42;
        hart.privilege = PrivilegeLevel::User;
        hart.domain = DomainKind::Enclave(EnclaveId::new(7));
        hart.page_table_root = Some(PhysAddr::new(0x8000_1000));
        assert!(!hart.is_clean());
        hart.clean();
        assert!(hart.is_clean());
        assert_eq!(hart.domain, DomainKind::SecurityMonitor);
        assert_eq!(hart.id, CoreId::new(1));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut hart = HartState::new(CoreId::new(0));
        hart.regs[1] = 111;
        hart.regs[2] = 222;
        hart.pc = 9;
        hart.page_table_root = Some(PhysAddr::new(0x8000_2000));
        let snap = hart.snapshot();
        hart.clean();
        assert!(hart.is_clean());
        hart.restore(&snap);
        assert_eq!(hart.regs[1], 111);
        assert_eq!(hart.regs[2], 222);
        assert_eq!(hart.pc, 9);
        assert_eq!(hart.page_table_root, Some(PhysAddr::new(0x8000_2000)));
    }

    #[test]
    fn privilege_ordering() {
        assert!(PrivilegeLevel::Machine > PrivilegeLevel::Supervisor);
        assert!(PrivilegeLevel::Supervisor > PrivilegeLevel::User);
    }
}
