//! Acceptance tests for the adversarial explorer (ISSUE 2):
//!
//! * a seed sweep across both backends with zero invariant violations and
//!   zero differential divergences — 100 seeds × 200 steps by default, and
//!   `EXPLORER_SEEDS` / `EXPLORER_STEPS` raise the budget (CI runs 500 × 400
//!   in release, affordable since the ISSUE 3 incremental-checking overhaul);
//! * deterministic replay (same seed ⇒ identical digests and reports);
//! * a deliberately weakened monitor is caught, reported with replayable
//!   `(seed, step)` coordinates, and minimized;
//! * capacity-limited backends produce *declared* divergences, not failures.

use sanctorum_core::monitor::TestWeakening;
use sanctorum_explorer::{explorer_machine_config, Explorer, ExplorerConfig, Violation};

fn env_budget(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn sweep_finds_no_violations_and_no_divergences() {
    let seeds = env_budget("EXPLORER_SEEDS", 100);
    let steps = env_budget("EXPLORER_STEPS", 200) as usize;
    let explorer = Explorer::new(ExplorerConfig {
        steps,
        ..ExplorerConfig::default()
    });
    let stats = explorer.sweep(0..seeds);
    for failure in &stats.failures {
        eprintln!("{failure}");
    }
    assert!(stats.failures.is_empty(), "{} violations", stats.failures.len());
    assert_eq!(stats.declared_divergences, 0, "unexpected capacity divergence");
    assert_eq!(stats.seeds as u64, seeds);
    assert!(
        stats.total_steps as u64 >= seeds * steps as u64,
        "only {} steps ran",
        stats.total_steps
    );
    // The op mix actually exercised the whole surface.
    for label in ["build", "run", "teardown", "attack", "mail-roundtrip", "batch"] {
        assert!(
            stats.op_counts.get(label).copied().unwrap_or(0) > 0,
            "op {label} never ran: {:?}",
            stats.op_counts
        );
    }
    eprintln!(
        "explorer sweep: {} seeds x {} steps, ops: {:?}",
        stats.seeds,
        stats.total_steps / stats.seeds,
        stats.op_counts
    );
}

#[test]
fn replay_is_deterministic_down_to_the_machine_digest() {
    let explorer = Explorer::new(ExplorerConfig {
        steps: 120,
        ..ExplorerConfig::default()
    });
    let a = explorer.run_seed(0x5eed);
    let b = explorer.run_seed(0x5eed);
    assert_eq!(a.final_digests, b.final_digests, "replay must be bit-identical");
    assert_eq!(a.op_counts, b.op_counts);
    if let Some(failure) = &a.failure {
        panic!("unexpected failure:\n{failure}");
    }
}

/// Finds the first seed a weakened monitor fails on, within a small budget.
fn first_failure(config: ExplorerConfig) -> (Explorer, sanctorum_explorer::FailureReport) {
    let explorer = Explorer::new(config);
    for seed in 0..32 {
        if let Some(failure) = explorer.run_seed(seed).failure {
            return (explorer, failure);
        }
    }
    panic!("no seed caught the weakened monitor within 32 seeds");
}

#[test]
fn skipped_region_scrub_is_caught_and_replayable() {
    let (explorer, failure) = first_failure(ExplorerConfig {
        weaken: Some(TestWeakening::SkipRegionScrub),
        ..ExplorerConfig::default()
    });
    // Two checks can legitimately catch an unscrubbed region, whichever
    // observes it first: the clean-before-reuse content scan (the region
    // rests in *Available* across a step boundary) or the dirty-page memory
    // secret scan (a teardown recycles the region to the OS within a single
    // op, exposing the resident secret to untrusted reads immediately).
    assert!(
        matches!(
            failure.violation,
            Violation::DirtyReuse { .. } | Violation::SecretInMemory { .. }
        ),
        "expected dirty-reuse or secret-in-memory, got {}",
        failure.violation
    );
    // The (seed, step) coordinates alone reproduce the same violation kind.
    let (step, replayed) = explorer
        .replay(failure.seed, failure.step)
        .expect("replay reproduces the violation");
    assert_eq!(step, failure.step);
    assert_eq!(replayed.kind(), failure.violation.kind());
    assert_eq!(replayed, failure.violation);
    // The minimized trace reproduces it too, and is genuinely shorter.
    assert!(!failure.minimized.is_empty());
    assert!(failure.minimized.len() <= failure.step + 1);
    let (_, minimized_violation) = explorer
        .probe(&failure.minimized)
        .expect("minimized trace still fails");
    assert_eq!(minimized_violation.kind(), failure.violation.kind());
    eprintln!("weakened monitor caught:\n{failure}");
}

#[test]
fn skipped_core_clean_is_caught_as_a_secret_leak() {
    let (_, failure) = first_failure(ExplorerConfig {
        weaken: Some(TestWeakening::SkipCoreClean),
        ..ExplorerConfig::default()
    });
    // Two detectors can legitimately fire first: the kernel's own register
    // secret scan, or the interrupt-storm attack's in-op leak check (the
    // storm forces AEXes whose skipped core clean leaves the enclave secret
    // in OS-visible registers, so the attack truthfully reports itself
    // unblocked). Both are detections of the weakening.
    assert!(
        matches!(
            failure.violation,
            Violation::SecretLeak { .. } | Violation::AttackSucceeded { .. }
        ),
        "expected secret-leak or attack-succeeded, got {}",
        failure.violation
    );
}

#[test]
fn pmp_exhaustion_is_a_declared_divergence_not_a_failure() {
    // Three PMP entries: the SM takes one, so the third concurrent enclave
    // build fails on Keystone while Sanctum keeps going. The differential
    // policy must classify that as a *declared* capacity divergence.
    let config = ExplorerConfig {
        machine: sanctorum_machine::MachineConfig {
            pmp_entries: 3,
            ..explorer_machine_config()
        },
        ..ExplorerConfig::default()
    };
    let explorer = Explorer::new(config);
    let mut declared = 0;
    for seed in 0..12 {
        let report = explorer.run_seed(seed);
        assert!(
            report.failure.is_none(),
            "capacity divergence misclassified: {}",
            report.failure.unwrap()
        );
        declared += report.declared_divergences;
    }
    assert!(declared > 0, "no declared divergence in 12 seeds");
}
