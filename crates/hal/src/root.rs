//! Device root-of-trust abstraction (paper Sections IV-A, IV-B4, VI-C).
//!
//! The SM's attestation key pair is derived during secure boot from a
//! device-unique secret and the measurement of the SM binary, and is endorsed
//! by the manufacturer's PKI. This module defines the trait the SM uses to
//! obtain that material; the simulator's implementation fabricates a device
//! secret per simulated machine.

use serde::{Deserialize, Serialize};

/// A device-unique secret fused into the hardware at manufacture time.
///
/// Only the measurement root (the boot ROM in the paper's secure boot
/// protocol) may read it; the SM receives only keys *derived* from it.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceSecret(pub [u8; 32]);

impl DeviceSecret {
    /// Creates a device secret from raw bytes.
    pub const fn new(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }

    /// Returns the raw secret bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl core::fmt::Debug for DeviceSecret {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material, even in debug output.
        write!(f, "DeviceSecret(<redacted>)")
    }
}

/// Root of trust interface the secure-boot flow is built on.
///
/// The trait captures what the paper's boot protocol [Lebedev et al., CSF'18]
/// needs from hardware: a device secret for key derivation and a
/// manufacturer-endorsed identity for the device key.
pub trait RootOfTrust {
    /// Returns the device-unique secret. Conceptually only readable by the
    /// measurement root during boot.
    fn device_secret(&self) -> DeviceSecret;

    /// Returns the manufacturer-assigned device identifier (serial number).
    fn device_id(&self) -> u64;
}

/// A simple fabricated root of trust for the simulated machine.
#[derive(Debug, Clone)]
pub struct SimulatedRootOfTrust {
    secret: DeviceSecret,
    device_id: u64,
}

impl SimulatedRootOfTrust {
    /// Fabricates a root of trust for simulated device `device_id`.
    ///
    /// The secret is derived deterministically from the device id so that
    /// tests are reproducible; distinct devices get distinct secrets.
    pub fn new(device_id: u64) -> Self {
        let mut secret = [0u8; 32];
        let mut x = device_id ^ 0x5eed_5eed_5eed_5eed;
        for chunk in secret.chunks_mut(8) {
            x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29) ^ device_id;
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        Self {
            secret: DeviceSecret::new(secret),
            device_id,
        }
    }
}

impl RootOfTrust for SimulatedRootOfTrust {
    fn device_secret(&self) -> DeviceSecret {
        self.secret.clone()
    }

    fn device_id(&self) -> u64 {
        self.device_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_devices_have_distinct_secrets() {
        let a = SimulatedRootOfTrust::new(1);
        let b = SimulatedRootOfTrust::new(2);
        assert_ne!(a.device_secret().0, b.device_secret().0);
        assert_eq!(a.device_id(), 1);
    }

    #[test]
    fn same_device_is_stable() {
        let a = SimulatedRootOfTrust::new(77);
        let b = SimulatedRootOfTrust::new(77);
        assert_eq!(a.device_secret().0, b.device_secret().0);
    }

    #[test]
    fn debug_output_redacts_secret() {
        let s = DeviceSecret::new([0xab; 32]);
        let dbg = format!("{s:?}");
        assert!(!dbg.contains("171")); // 0xab
        assert!(dbg.contains("redacted"));
    }
}
