//! Multi-machine attestation worlds.
//!
//! A [`Fleet`] boots `N` fully independent simulated machines — each with its
//! own [`System`] (machine, security monitor, secure-boot identity), its own
//! device serial rooted in the simulated PKI, and its own long-running
//! signing-enclave service reached over the mailbox fabric. One manufacturer
//! CA certifies every machine's boot-derived device key, so a single
//! [`RemoteVerifier`] pinned to the CA root can attest enclaves on any
//! machine of the fleet — which is exactly the deployment shape the paper's
//! remote-attestation protocol (Fig. 7) targets: one relying party, many
//! devices.
//!
//! The harness is deterministic end to end: machine device ids, client DH
//! keypairs and the CA seed are all pure functions of the [`FleetConfig`],
//! so two boots of the same config produce bit-identical certificate chains
//! and key material. Machines are independent [`Send`] values, so a load
//! generator can park each [`FleetMachine`] on its own worker thread and
//! drive attestation rounds against one shared concurrent verifier — the
//! fleet benchmark (`fleet_stats`) does exactly that.

use crate::os::Os;
use crate::system::{PlatformKind, System};
use sanctorum_core::attestation::{AttestationEvidence, Certificate};
use sanctorum_core::mailbox::MAILBOX_QUEUE_DEPTH;
use sanctorum_core::measurement::Measurement;
use sanctorum_core::monitor::{SecurityMonitor, SmConfig};
use sanctorum_crypto::ed25519::PublicKey;
use sanctorum_crypto::sha3::Sha3_256;
use sanctorum_crypto::x25519;
use sanctorum_enclave::client::AttestationClient;
use sanctorum_enclave::image::EnclaveImage;
use sanctorum_enclave::signing::SigningEnclave;
use sanctorum_hal::domain::EnclaveId;
use sanctorum_machine::MachineConfig;
use sanctorum_verifier::{ManufacturerCa, RemoteVerifier, SessionPool};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Geometry and identity of a simulated fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Isolation backend every machine boots on.
    pub platform: PlatformKind,
    /// Number of machines (≥ 1; the fleet benchmark requires ≥ 4).
    pub machines: usize,
    /// Attestation-client enclaves built per machine (≥ 1; bounded by the
    /// machine geometry — see [`Fleet::boot`]).
    pub clients_per_machine: usize,
    /// Seed of the manufacturer CA that certifies every device.
    pub ca_seed: [u8; 32],
    /// Device serial of machine 0; machine `i` gets `device_id_base + i`,
    /// so every machine derives a distinct device keypair at secure boot.
    pub device_id_base: u64,
}

impl FleetConfig {
    /// A fleet of `machines` machines with `clients_per_machine` clients
    /// each, on the Sanctum backend with fixed default identity seeds.
    pub fn new(machines: usize, clients_per_machine: usize) -> Self {
        Self {
            platform: PlatformKind::Sanctum,
            machines,
            clients_per_machine,
            ca_seed: [0x5f; 32],
            device_id_base: 0xf1ee_7000,
        }
    }
}

/// One client slot on a fleet machine: a built enclave plus the
/// deterministically derived X25519 keypair its attestation requests bind.
#[derive(Debug)]
struct ClientSlot {
    eid: EnclaveId,
    measurement: Measurement,
    dh_secret: [u8; 32],
    dh_public: [u8; 32],
}

/// What one [`FleetMachine::attest_round`] accomplished.
#[derive(Debug, Default)]
pub struct RoundOutcome {
    /// Sessions verified and filed into the pool this round.
    pub verified: usize,
    /// Exchanges that failed anywhere between submit and verification.
    pub failed: usize,
    /// Pool inserts that displaced a live session (the session-fixation
    /// shape; a correct round over unique tags never produces one).
    pub replaced: usize,
    /// Per-session latency, challenge issue → session filed, one entry per
    /// verified session. Waves are pipelined, so these include fabric queue
    /// time — the number a relying party under load would observe.
    pub latencies: Vec<Duration>,
}

/// One booted machine of the fleet, owning its system, its signing-enclave
/// service and its client enclaves. Independent of every other machine —
/// safe to move onto a worker thread.
#[derive(Debug)]
pub struct FleetMachine {
    index: usize,
    system: System,
    /// Kept alive for the machine's lifetime: the OS model owns the region
    /// bookkeeping behind every enclave this machine runs.
    _os: Os,
    signing: SigningEnclave,
    device_certificate: Certificate,
    clients: Vec<ClientSlot>,
}

impl FleetMachine {
    /// The machine's position in the fleet.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The machine's device serial.
    pub fn device_id(&self) -> u64 {
        self.system.machine.config().device_id
    }

    /// Number of client enclaves on this machine.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// The CA-issued certificate for this machine's boot-derived device key.
    pub fn device_certificate(&self) -> &Certificate {
        &self.device_certificate
    }

    /// This machine's device public key (the subject of its certificate).
    pub fn device_public_key(&self) -> PublicKey {
        self.device_certificate.subject_public_key
    }

    /// This machine's SM attestation public key (the key its reports carry).
    pub fn sm_attestation_public_key(&self) -> PublicKey {
        *self
            .system
            .monitor
            .identity()
            .attestation_keypair
            .public()
    }

    /// The measurement shared by this machine's client enclaves.
    pub fn client_measurement(&self) -> Measurement {
        self.clients[0].measurement
    }

    /// The pool tag filed for `(round, machine, slot)`: the low 12 bits are
    /// the client slot, the next 12 the machine index, the rest the round —
    /// globally unique across the fleet for up to 4096 machines × 4096
    /// clients, so every verified session lands [`InsertOutcome::Fresh`].
    ///
    /// [`InsertOutcome::Fresh`]: sanctorum_verifier::InsertOutcome::Fresh
    pub fn session_tag(round: u64, machine: usize, slot: usize) -> u64 {
        (round << 24) | (((machine as u64) & 0xfff) << 12) | ((slot as u64) & 0xfff)
    }

    /// Runs one complete attestation round over every client on this
    /// machine: challenges are issued from `verifier`, requests pipelined to
    /// the signing service in waves bounded by the mailbox queue depth, and
    /// each verified session filed into `sessions` under
    /// [`FleetMachine::session_tag`].
    pub fn attest_round(
        &mut self,
        verifier: &RemoteVerifier,
        sessions: &SessionPool,
        round: u64,
    ) -> RoundOutcome {
        let monitor = Arc::clone(&self.system.monitor);
        let sm: &SecurityMonitor = &monitor;
        let mut outcome = RoundOutcome::default();
        for wave_start in (0..self.clients.len()).step_by(MAILBOX_QUEUE_DEPTH) {
            let wave_end = (wave_start + MAILBOX_QUEUE_DEPTH).min(self.clients.len());
            let mut pending = Vec::with_capacity(wave_end - wave_start);
            for slot in wave_start..wave_end {
                let started = Instant::now();
                let challenge = verifier.begin();
                let entry = &self.clients[slot];
                let client =
                    AttestationClient::from_dh_keypair(entry.eid, entry.dh_secret, entry.dh_public);
                if client
                    .submit_request(sm, self.signing.eid(), challenge.nonce)
                    .is_ok()
                {
                    pending.push((slot, client, challenge, started));
                } else {
                    outcome.failed += 1;
                }
            }
            self.signing
                .drain(sm)
                .expect("signing service opened at boot");
            for (slot, client, challenge, started) in pending {
                let Ok(response) = client.collect_response(sm, self.device_certificate.clone())
                else {
                    outcome.failed += 1;
                    continue;
                };
                match verifier.verify(&response.evidence, &response.enclave_dh_public) {
                    Ok(mut session) => {
                        // The attested channel must work end to end before the
                        // session counts: the enclave side derives its half
                        // from the same key agreement.
                        let shared = client.shared_secret(&challenge.verifier_dh_public);
                        let mut enclave_side =
                            sanctorum_verifier::SecureSession::new(&shared, &challenge.nonce);
                        let sealed = session.seal(b"fleet-hello");
                        if enclave_side.open(&sealed).is_err() {
                            outcome.failed += 1;
                            continue;
                        }
                        let tag = Self::session_tag(round, self.index, slot);
                        if !sessions.insert(tag, session).is_fresh() {
                            outcome.replaced += 1;
                        }
                        outcome.latencies.push(started.elapsed());
                        outcome.verified += 1;
                    }
                    Err(_) => outcome.failed += 1,
                }
            }
        }
        outcome
    }

    /// Collects one batch of attestation evidence — one item per client —
    /// without verifying it: challenges are issued (and stay outstanding),
    /// the fabric round-trips run, and the `(evidence, enclave DH public)`
    /// pairs come back in [`RemoteVerifier::verify_batch`] shape. The fleet
    /// benchmark uses this to pre-generate work for the serial-versus-
    /// concurrent verifier comparison; the invariants tests use it to build
    /// cross-machine forgeries.
    pub fn collect_evidence(
        &mut self,
        verifier: &RemoteVerifier,
    ) -> Vec<(AttestationEvidence, [u8; 32])> {
        let monitor = Arc::clone(&self.system.monitor);
        let sm: &SecurityMonitor = &monitor;
        let mut batch = Vec::with_capacity(self.clients.len());
        for wave_start in (0..self.clients.len()).step_by(MAILBOX_QUEUE_DEPTH) {
            let wave_end = (wave_start + MAILBOX_QUEUE_DEPTH).min(self.clients.len());
            let mut pending = Vec::with_capacity(wave_end - wave_start);
            for slot in wave_start..wave_end {
                let challenge = verifier.begin();
                let entry = &self.clients[slot];
                let client =
                    AttestationClient::from_dh_keypair(entry.eid, entry.dh_secret, entry.dh_public);
                if client
                    .submit_request(sm, self.signing.eid(), challenge.nonce)
                    .is_ok()
                {
                    pending.push(client);
                }
            }
            self.signing
                .drain(sm)
                .expect("signing service opened at boot");
            for client in pending {
                if let Ok(response) = client.collect_response(sm, self.device_certificate.clone())
                {
                    batch.push((response.evidence, response.enclave_dh_public));
                }
            }
        }
        batch
    }
}

/// A booted multi-machine world: one manufacturer CA plus `N` independent
/// machines, ready for a verifier pinned to the CA root.
#[derive(Debug)]
pub struct Fleet {
    ca: ManufacturerCa,
    machines: Vec<FleetMachine>,
}

impl Fleet {
    /// Boots the fleet described by `config`.
    ///
    /// Every machine uses the attestation-service geometry (half-megabyte
    /// regions, PMP budget covering them all); `clients_per_machine + 2`
    /// regions must fit (clients + signing enclave + OS staging).
    ///
    /// # Panics
    ///
    /// Panics if the geometry cannot hold the requested clients, or on any
    /// enclave-build failure (a fresh system never refuses these builds).
    pub fn boot(config: &FleetConfig) -> Self {
        let ca = ManufacturerCa::new(config.ca_seed);
        // Pass 1: learn the signing enclave's measurement on a scratch
        // system (measurements are placement- and platform-independent).
        let scratch = System::boot_small(config.platform);
        let signing_measurement = Os::new(&scratch)
            .build_enclave(&EnclaveImage::signing_enclave(), 1)
            .expect("probe build of the signing enclave succeeds")
            .measurement;
        let machines = (0..config.machines.max(1))
            .map(|index| {
                Self::boot_machine(config, &ca, index, signing_measurement)
            })
            .collect();
        Self { ca, machines }
    }

    fn boot_machine(
        config: &FleetConfig,
        ca: &ManufacturerCa,
        index: usize,
        signing_measurement: Measurement,
    ) -> FleetMachine {
        let clients = config.clients_per_machine.max(1);
        // Half-megabyte regions, one per enclave plus headroom for the
        // signing enclave and OS staging; the PMP budget covers every
        // region so both backends behave identically.
        let regions = (clients + 4).max(16);
        let machine_config = MachineConfig {
            memory_size: regions * 512 * 1024,
            dram_region_size: 512 * 1024,
            pmp_entries: regions + 8,
            device_id: config.device_id_base.wrapping_add(index as u64),
            ..MachineConfig::small()
        };
        assert!(
            clients + 2 <= machine_config.num_regions(),
            "too many clients for the machine geometry"
        );
        let system = System::boot(
            config.platform,
            machine_config,
            SmConfig {
                signing_enclave_measurement: Some(signing_measurement),
                ..SmConfig::default()
            },
        );
        let mut os = Os::new(&system);
        let signing_built = os
            .build_enclave(&EnclaveImage::signing_enclave(), 1)
            .expect("signing enclave builds");
        let mut signing = SigningEnclave::new(signing_built.eid);
        signing
            .open_service(&system.monitor)
            .expect("the monitor trusts the probed signing measurement");
        let device_certificate = ca.certify_device(system.machine.root_of_trust());
        let clients = (0..clients)
            .map(|slot| {
                let built = os
                    .build_enclave(&EnclaveImage::attestation_client(), 1)
                    .expect("client enclave builds");
                let (dh_secret, dh_public) = client_dh_keypair(index, slot);
                ClientSlot {
                    eid: built.eid,
                    measurement: built.measurement,
                    dh_secret,
                    dh_public,
                }
            })
            .collect();
        FleetMachine {
            index,
            system,
            _os: os,
            signing,
            device_certificate,
            clients,
        }
    }

    /// The manufacturer CA whose root every fleet verifier pins.
    pub fn ca(&self) -> &ManufacturerCa {
        &self.ca
    }

    /// Number of machines in the fleet.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// `true` only for an impossible empty fleet (boot clamps to ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Total client enclaves across the fleet.
    pub fn total_clients(&self) -> usize {
        self.machines.iter().map(FleetMachine::client_count).sum()
    }

    /// The machines, for in-place (single-threaded) driving.
    pub fn machines_mut(&mut self) -> &mut [FleetMachine] {
        &mut self.machines
    }

    /// The machines, shared view.
    pub fn machines(&self) -> &[FleetMachine] {
        &self.machines
    }

    /// Builds a verifier pinned to this fleet's CA root and every distinct
    /// client measurement, with the given DRBG seed.
    pub fn verifier(&self, drbg_seed: [u8; 32]) -> RemoteVerifier {
        let mut measurements: Vec<Measurement> = self
            .machines
            .iter()
            .map(FleetMachine::client_measurement)
            .collect();
        measurements.sort_unstable_by_key(|m| *m.as_bytes());
        measurements.dedup_by_key(|m| *m.as_bytes());
        RemoteVerifier::new(self.ca.root_public_key(), measurements, drbg_seed)
    }

    /// Disassembles the fleet into its machines so a load generator can move
    /// each onto its own worker thread.
    pub fn into_machines(self) -> (ManufacturerCa, Vec<FleetMachine>) {
        (self.ca, self.machines)
    }
}

/// The X25519 keypair for client `slot` on machine `machine` — a pure
/// function of the pair, so rebooted fleets bind identical keys.
fn client_dh_keypair(machine: usize, slot: usize) -> ([u8; 32], [u8; 32]) {
    let mut material = Vec::with_capacity(40);
    material.extend_from_slice(b"sanctorum-fleet-dh-v1");
    material.extend_from_slice(&(machine as u64).to_le_bytes());
    material.extend_from_slice(&(slot as u64).to_le_bytes());
    let secret = x25519::clamp_scalar(Sha3_256::digest(&material));
    let public = x25519::public_key(&secret);
    (secret, public)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_verifier::VerifyError;

    fn small_fleet() -> Fleet {
        Fleet::boot(&FleetConfig::new(4, 2))
    }

    #[test]
    fn machines_have_distinct_device_and_sm_keys() {
        let fleet = small_fleet();
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet.total_clients(), 8);
        for a in 0..fleet.len() {
            let machine = &fleet.machines()[a];
            assert!(machine.device_certificate().verify());
            assert_eq!(
                machine.device_certificate().issuer_public_key,
                fleet.ca().root_public_key()
            );
            for b in (a + 1)..fleet.len() {
                let other = &fleet.machines()[b];
                assert_ne!(machine.device_public_key(), other.device_public_key());
                assert_ne!(
                    machine.sm_attestation_public_key(),
                    other.sm_attestation_public_key()
                );
            }
        }
    }

    #[test]
    fn one_verifier_attests_every_machine() {
        let mut fleet = small_fleet();
        let verifier = fleet.verifier([0x77; 32]);
        let sessions = SessionPool::new();
        let mut verified = 0;
        for machine in fleet.machines_mut() {
            let outcome = machine.attest_round(&verifier, &sessions, 0);
            assert_eq!(outcome.failed, 0);
            assert_eq!(outcome.replaced, 0);
            assert_eq!(outcome.verified, machine.client_count());
            assert_eq!(outcome.latencies.len(), outcome.verified);
            verified += outcome.verified;
        }
        assert_eq!(verified, 8);
        assert_eq!(sessions.len(), 8);
        // A second round files under fresh tags: nothing is displaced.
        for machine in fleet.machines_mut() {
            let outcome = machine.attest_round(&verifier, &sessions, 1);
            assert_eq!(outcome.replaced, 0);
            assert_eq!(outcome.verified, machine.client_count());
        }
        assert_eq!(sessions.len(), 16);
        assert_eq!(verifier.stats().verified_sessions, 16);
    }

    #[test]
    fn revoking_one_machine_leaves_the_rest_attestable() {
        let mut fleet = small_fleet();
        let verifier = fleet.verifier([0x78; 32]);
        let revoked_key = fleet.machines()[1].device_public_key();
        verifier.revoke_device(revoked_key);
        let sessions = SessionPool::new();
        for machine in fleet.machines_mut() {
            let outcome = machine.attest_round(&verifier, &sessions, 0);
            if machine.device_public_key() == revoked_key {
                assert_eq!(outcome.verified, 0);
                assert_eq!(outcome.failed, machine.client_count());
            } else {
                assert_eq!(outcome.verified, machine.client_count());
                assert_eq!(outcome.failed, 0);
            }
        }
        assert_eq!(sessions.len(), 6);
    }

    #[test]
    fn cross_machine_evidence_is_rejected() {
        let mut fleet = small_fleet();
        let verifier = fleet.verifier([0x79; 32]);
        // A report signed on machine 0 spliced onto machine 1's certificate
        // chain must die at the chain/signature boundary: the chain's SM key
        // is not the key that signed the report.
        let batch = fleet.machines_mut()[0].collect_evidence(&verifier);
        let foreign_chain = fleet.machines()[1].device_certificate().clone();
        let foreign_sm = fleet.machines()[1]
            .system
            .monitor
            .sm_certificate();
        for (evidence, dh_public) in batch {
            let mut spliced = evidence.clone();
            spliced.device_certificate = foreign_chain.clone();
            spliced.sm_certificate = foreign_sm.clone();
            // Machine 1's chain is internally valid and roots in the CA, so
            // the splice dies exactly at the report signature: the chain's
            // SM key is not the key that signed machine 0's report.
            let err = verifier
                .verify(&spliced, &dh_public)
                .expect_err("spliced evidence must not verify");
            assert_eq!(err, VerifyError::BadSignature);
        }
    }

    #[test]
    fn rebooted_fleet_reproduces_identities() {
        let config = FleetConfig::new(2, 1);
        let a = Fleet::boot(&config);
        let b = Fleet::boot(&config);
        for (left, right) in a.machines().iter().zip(b.machines()) {
            assert_eq!(left.device_public_key(), right.device_public_key());
            assert_eq!(
                left.device_certificate().issuer_public_key,
                right.device_certificate().issuer_public_key
            );
            assert_eq!(
                left.sm_attestation_public_key(),
                right.sm_attestation_public_key()
            );
        }
    }
}
