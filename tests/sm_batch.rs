//! Batched SM calls: per-call statuses, clean aborts on context-switching
//! calls, equivalence with serial calls, and single-trap execution of large
//! batches (the `SmCall::Batch` path introduced by the call-registry
//! redesign).

use sanctorum_bench::boot;
use sanctorum_core::api::{status, CallOutcome, SmApi, SmCall};
use sanctorum_core::dispatch::EventOutcome;
use sanctorum_core::resource::{ResourceId, ResourceState};
use sanctorum_core::session::CallerSession;
use sanctorum_hal::addr::PhysAddr;
use sanctorum_trust::Tainted;
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_hal::isolation::RegionId;
use sanctorum_machine::trap::TrapCause;
use sanctorum_machine::hart::PrivilegeLevel;
use sanctorum_os::os::Os;
use sanctorum_os::system::{PlatformKind, System};

/// Puts `core` in the untrusted OS context, as it would be when the OS traps
/// into the SM with an environment call.
fn install_os_context(system: &System, core: CoreId) {
    system
        .machine
        .install_context(core, DomainKind::Untrusted, PrivilegeLevel::Supervisor, None, 0);
}

/// Picks a region the untrusted OS owns at boot (and the OS model has not
/// repurposed as its staging area).
fn os_owned_region(system: &System, os: &Os) -> RegionId {
    let staging_region = (os.staging_base().as_u64()
        - system.machine.config().memory_base.as_u64())
        / system.machine.config().dram_region_size as u64;
    (0..system.machine.config().num_regions() as u32)
        .map(RegionId::new)
        .find(|r| {
            r.index() as u64 != staging_region
                && matches!(
                    system.monitor.resource_state(ResourceId::Region(*r)),
                    Ok(ResourceState::Owned(DomainKind::Untrusted))
                )
        })
        .expect("an untrusted region exists at boot")
}

/// A scratch table location inside the OS staging area, clear of the page the
/// OS model uses to stage enclave images.
fn table_addr(os: &Os) -> PhysAddr {
    os.staging_base().offset(0x8000)
}

#[test]
fn batch_of_eight_executes_in_one_handle_event_with_per_call_statuses() {
    for platform in PlatformKind::ALL {
        let (system, os) = boot(platform);
        let core = CoreId::new(0);
        install_os_context(&system, core);
        let region = os_owned_region(&system, &os);
        let table = table_addr(&os);

        // A region lifecycle (block → clean → grant back), public-field
        // queries, and two calls that must fail: an enclave-only call from
        // the OS and a lookup of an enclave that does not exist.
        let calls = vec![
            SmCall::GetField { field: 3 },
            SmCall::BlockRegion { region },
            SmCall::CleanRegion { region },
            SmCall::GrantRegion { region, owner_eid: 0 },
            SmCall::AcceptMail { mailbox: 0, sender_id: 0 },
            SmCall::GetField { field: 0 },
            SmCall::InitEnclave { eid: sanctorum_hal::domain::EnclaveId::new(0xdead) },
            SmCall::GetField { field: 2 },
        ];
        assert!(calls.len() >= 8);
        system.monitor.stage_batch(core, table, &calls).unwrap();

        // ONE dispatcher invocation executes the whole table.
        let outcome = system.monitor.handle_event(core, TrapCause::EnvironmentCall);
        assert_eq!(
            outcome,
            EventOutcome::SmCallDone { status: status::OK, value: calls.len() as u64 }
        );
        let (code, executed) = system.monitor.read_call_result(core);
        assert_eq!(code, status::OK);
        assert_eq!(executed, calls.len() as u64);

        // Per-call statuses landed in the table.
        let expect = [
            (status::OK, 32),              // SmMeasurement length
            (status::OK, 0),               // block
            (status::OK, u64::MAX),        // clean (cycle count, platform-dependent)
            (status::OK, 0),               // grant
            (status::UNAUTHORIZED, 0),     // enclave-only call from the OS
            (status::OK, 32),              // attestation public key length
            (status::UNKNOWN_ENCLAVE, 0),  // no such enclave
            (status::OK, 32),              // device public key length
        ];
        for (idx, (want_status, want_value)) in expect.iter().enumerate() {
            let (got_status, got_value) =
                system.monitor.read_batch_result(table, idx as u64).unwrap();
            assert_eq!(got_status, *want_status, "entry {idx} on {platform:?}");
            if *want_value != u64::MAX {
                assert_eq!(got_value, *want_value, "entry {idx} on {platform:?}");
            }
        }
        // The region ended up back with the OS, exactly as if called serially.
        assert_eq!(
            system.monitor.resource_state(ResourceId::Region(region)).unwrap(),
            ResourceState::Owned(DomainKind::Untrusted)
        );
    }
}

#[test]
fn batch_aborts_cleanly_on_context_switching_calls() {
    let (system, os) = boot(PlatformKind::Sanctum);
    let core = CoreId::new(0);
    install_os_context(&system, core);
    let table = table_addr(&os);

    let calls = vec![
        SmCall::GetField { field: 3 },
        SmCall::ExitEnclave {}, // context-switching: must abort the batch
        SmCall::GetField { field: 3 },
    ];
    system.monitor.stage_batch(core, table, &calls).unwrap();
    let outcome = system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    // Two entries received a status (the second being the refusal); the third
    // was never examined.
    assert_eq!(outcome, EventOutcome::SmCallDone { status: status::OK, value: 2 });
    assert_eq!(system.monitor.read_batch_result(table, 0).unwrap().0, status::OK);
    assert_eq!(
        system.monitor.read_batch_result(table, 1).unwrap().0,
        status::INVALID_ARGUMENT
    );
    assert_eq!(system.monitor.read_batch_result(table, 2).unwrap().0, status::NOT_RUN);
    // No context switch happened: the hart still belongs to the OS.
    assert_eq!(system.machine.hart(core).domain, DomainKind::Untrusted);

    // Nested batches are refused the same way.
    let calls = vec![
        SmCall::GetField { field: 3 },
        SmCall::Batch { table: table.into(), count: 1 },
        SmCall::GetField { field: 3 },
    ];
    system.monitor.stage_batch(core, table, &calls).unwrap();
    let outcome = system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(outcome, EventOutcome::SmCallDone { status: status::OK, value: 2 });
    assert_eq!(
        system.monitor.read_batch_result(table, 1).unwrap().0,
        status::INVALID_ARGUMENT
    );
    assert_eq!(system.monitor.read_batch_result(table, 2).unwrap().0, status::NOT_RUN);
}

#[test]
fn batch_matches_serial_call_semantics() {
    // Drive the same call sequence through the serial ecall path on one
    // system and through one batch on an identically booted system; statuses
    // and resulting monitor state must be identical.
    let (serial_system, serial_os) = boot(PlatformKind::Keystone);
    let (batch_system, batch_os) = boot(PlatformKind::Keystone);
    let core = CoreId::new(0);
    install_os_context(&serial_system, core);
    install_os_context(&batch_system, core);
    let region = os_owned_region(&serial_system, &serial_os);
    assert_eq!(region, os_owned_region(&batch_system, &batch_os));

    let calls = vec![
        SmCall::BlockRegion { region },
        SmCall::BlockRegion { region }, // double block: must fail identically
        SmCall::CleanRegion { region },
        SmCall::GrantRegion { region, owner_eid: 0 },
        SmCall::GetField { field: 1 },
        SmCall::GetMail { mailbox: 0, out_addr: table_addr(&serial_os).into(), out_len: 64 },
    ];

    let mut serial_results = Vec::new();
    for call in &calls {
        serial_system.monitor.stage_call(core, call);
        serial_system.monitor.handle_event(core, TrapCause::EnvironmentCall);
        let (status, value) = serial_system.monitor.read_call_result(core);
        serial_results.push((status, value));
    }

    let table = table_addr(&batch_os);
    batch_system.monitor.stage_batch(core, table, &calls).unwrap();
    batch_system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    for (idx, serial) in serial_results.iter().enumerate() {
        let batched = batch_system.monitor.read_batch_result(table, idx as u64).unwrap();
        assert_eq!(&batched, serial, "entry {idx} diverged from serial execution");
    }
    assert_eq!(
        serial_system.monitor.resource_state(ResourceId::Region(region)).unwrap(),
        batch_system.monitor.resource_state(ResourceId::Region(region)).unwrap(),
    );
}

#[test]
fn typed_batch_mirrors_packed_batch() {
    let (system, os) = boot(PlatformKind::Sanctum);
    let region = os_owned_region(&system, &os);
    let session = CallerSession::os();

    let calls = vec![
        SmCall::GetField { field: 3 },
        SmCall::BlockRegion { region },
        SmCall::AcceptMail { mailbox: 0, sender_id: 0 },
        SmCall::ExitEnclave {},
        SmCall::GetField { field: 3 }, // unreached after the abort
    ];
    let outcomes = system.monitor.batch(session, &calls).unwrap();
    assert_eq!(
        outcomes,
        vec![
            CallOutcome { status: status::OK, value: 32 },
            CallOutcome { status: status::OK, value: 0 },
            CallOutcome { status: status::UNAUTHORIZED, value: 0 },
            CallOutcome { status: status::INVALID_ARGUMENT, value: 0 },
        ]
    );
    assert!(outcomes[0].is_ok() && !outcomes[2].is_ok());
    assert_eq!(system.monitor.stats().batched_calls.load(std::sync::atomic::Ordering::Relaxed), 4);
}

#[test]
fn batch_shape_is_validated_before_any_entry_runs() {
    let (system, os) = boot(PlatformKind::Sanctum);
    let core = CoreId::new(0);
    install_os_context(&system, core);
    let table = table_addr(&os);
    let session = CallerSession::os();

    // Empty and oversized batches are rejected wholesale.
    assert_eq!(
        system.monitor.batch(session, &[]).unwrap_err(),
        sanctorum_core::SmError::InvalidArgument { reason: "empty batch" }
    );
    let oversized = vec![SmCall::GetField { field: 3 }; 65];
    assert!(system.monitor.batch(session, &oversized).is_err());

    // A misaligned table is rejected through the register path.
    system
        .monitor
        .stage_call(core, &SmCall::Batch { table: table.offset(4).into(), count: 1 });
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(system.monitor.read_call_result(core).0, status::INVALID_ARGUMENT);

    // A table the caller cannot access is rejected before anything executes:
    // region 0 is SM-reserved on both platforms.
    let sm_base = system.machine.config().memory_base;
    system
        .monitor
        .stage_call(core, &SmCall::Batch { table: sm_base.into(), count: 1 });
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(system.monitor.read_call_result(core).0, status::UNAUTHORIZED);
}

#[test]
fn undecodable_batch_entries_get_illegal_call_status_and_do_not_abort() {
    let (system, os) = boot(PlatformKind::Sanctum);
    let core = CoreId::new(0);
    install_os_context(&system, core);
    let table = table_addr(&os);

    let calls = vec![SmCall::GetField { field: 3 }, SmCall::GetField { field: 3 }];
    system.monitor.stage_batch(core, table, &calls).unwrap();
    // Corrupt entry 0's call number into nonsense; entry 1 must still run.
    system
        .machine
        .phys_write_u64(table, 0xbad0_ca11)
        .unwrap();
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(
        system.monitor.read_batch_result(table, 0).unwrap().0,
        status::ILLEGAL_CALL
    );
    assert_eq!(
        system.monitor.read_batch_result(table, 1).unwrap(),
        (status::OK, 32)
    );
    let (code, executed) = system.monitor.read_call_result(core);
    assert_eq!((code, executed), (status::OK, 2));
}

#[test]
fn batch_stops_writing_when_an_entry_revokes_table_access() {
    // A batched call can take away the caller's access to part of the batch
    // table itself: place the table so its last entry lies in region B, then
    // have earlier entries block, clean and finally grant B to an enclave.
    // The moment the grant lands, the SM must stop touching B — the old
    // behaviour kept writing status words into a just-scrubbed,
    // enclave-owned region with caller-chosen layout.
    let (system, mut os) = boot(PlatformKind::Sanctum);
    // Grants only succeed toward live enclaves, so build a real one to grant
    // the region to.
    let victim = os
        .build_enclave(&sanctorum_enclave::image::EnclaveImage::hello(1), 1)
        .unwrap();
    let core = CoreId::new(0);
    install_os_context(&system, core);

    // Two adjacent OS-owned regions A and B (B = A + 1), neither the staging
    // area.
    let config = system.machine.config();
    let region_a = os_owned_region(&system, &os);
    let region_b = RegionId::new(region_a.0 + 1);
    assert!(matches!(
        system.monitor.resource_state(ResourceId::Region(region_b)).unwrap(),
        ResourceState::Owned(DomainKind::Untrusted)
    ));
    let b_base = config
        .memory_base
        .offset((region_b.index() * config.dram_region_size) as u64);
    // Entries 0..=2 in A, entry 3 in B.
    let table = PhysAddr::new(b_base.as_u64() - 3 * 64);

    let calls = vec![
        SmCall::BlockRegion { region: region_b },
        SmCall::CleanRegion { region: region_b }, // zeroes B (incl. entry 3)
        // Granting B to the enclave revokes the OS's access to it.
        SmCall::GrantRegion { region: region_b, owner_eid: victim.eid.as_u64() },
        SmCall::GetField { field: 3 }, // lies in B: must never be touched
    ];
    system.monitor.stage_batch(core, table, &calls).unwrap();
    let outcome = system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    // The first three entries executed; the batch stopped short of entry 3.
    assert_eq!(outcome, EventOutcome::SmCallDone { status: status::OK, value: 3 });
    assert_eq!(system.monitor.read_batch_result(table, 0).unwrap().0, status::OK);
    assert_eq!(system.monitor.read_batch_result(table, 1).unwrap().0, status::OK);
    assert_eq!(system.monitor.read_batch_result(table, 2).unwrap().0, status::OK);
    // B now belongs to the enclave and stayed exactly as cleaning left it:
    // all zeros. In particular the SM wrote no ILLEGAL_CALL status into it.
    assert_eq!(
        system.monitor.resource_state(ResourceId::Region(region_b)).unwrap(),
        ResourceState::Owned(DomainKind::Enclave(victim.eid))
    );
    let (status_word, value_word) = system.monitor.read_batch_result(table, 3).unwrap();
    assert_eq!(
        (status_word, value_word),
        (0, 0),
        "the SM must not write into a region granted away mid-batch"
    );
}

#[test]
fn mail_buffers_cannot_straddle_into_foreign_regions() {
    use sanctorum_enclave::image::EnclaveImage;

    // Two enclaves in adjacent regions: B's region sits directly below A's.
    let (system, mut os) = {
        let system = System::boot_small(PlatformKind::Sanctum);
        let os = Os::new(&system);
        (system, os)
    };
    let a = os.build_enclave(&EnclaveImage::hello(1), 1).unwrap();
    let b = os.build_enclave(&EnclaveImage::hello(2), 1).unwrap();
    let a_base = system
        .machine
        .config()
        .memory_base
        .offset((a.regions[0].index() * system.machine.config().dram_region_size) as u64);
    assert_eq!(
        b.regions[0].index() + 1,
        a.regions[0].index(),
        "build order hands out adjacent regions downwards"
    );

    // B owns the bytes just below A's base, so a transfer starting there is
    // fine for B — but a span that continues into A's region must be refused,
    // not partially serviced with A's memory. Drive it through the register
    // ABI with the hart authenticated as enclave B.
    let edge = PhysAddr::new(a_base.as_u64() - 8);
    let core = CoreId::new(0);
    system.machine.install_context(
        core,
        DomainKind::Enclave(b.eid),
        PrivilegeLevel::User,
        None,
        0,
    );
    system.monitor.stage_call(
        core,
        &SmCall::SendMail { recipient: a.eid, msg_addr: edge.into(), msg_len: 64 },
    );
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(
        system.monitor.read_call_result(core).0,
        status::UNAUTHORIZED,
        "SendMail source spanning into a foreign region must be rejected"
    );
    system.monitor.stage_call(
        core,
        &SmCall::GetMail { mailbox: 0, out_addr: edge.into(), out_len: 64 },
    );
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(
        system.monitor.read_call_result(core).0,
        status::UNAUTHORIZED,
        "GetMail window spanning into a foreign region must be rejected"
    );
}

#[test]
fn get_mail_with_too_small_buffer_preserves_the_message() {
    use sanctorum_enclave::image::EnclaveImage;

    // Regression test: the register-ABI GetMail handler used to *consume*
    // the message via get_mail before comparing its length against the
    // caller's buffer capacity — so an enclave probing with a small buffer
    // destroyed the mail irrecoverably. The handler must peek first.
    let system = System::boot_small(PlatformKind::Sanctum);
    let mut os = Os::new(&system);
    let enclave = os.build_enclave(&EnclaveImage::hello(7), 1).unwrap();

    // The OS mails a 64-byte message the enclave has agreed to receive.
    let recipient = CallerSession::enclave(enclave.eid);
    system.monitor.accept_mail(recipient, 0, 0).unwrap();
    let message: Vec<u8> = (0u8..64).collect();
    system
        .monitor
        .send_mail(CallerSession::os(), enclave.eid, Tainted::new(&message))
        .unwrap();

    // Drive GetMail through the register ABI with the hart authenticated as
    // the enclave, writing into the last page of the enclave's own region
    // (well clear of its loaded image).
    let config = system.machine.config();
    let region_base = config
        .memory_base
        .offset((enclave.regions[0].index() * config.dram_region_size) as u64);
    let out_addr = region_base.offset(config.dram_region_size as u64 - 4096);
    let core = CoreId::new(0);
    system.machine.install_context(
        core,
        DomainKind::Enclave(enclave.eid),
        PrivilegeLevel::User,
        None,
        0,
    );

    // Attempt 1: a buffer too small for the waiting message. Must fail with
    // INVALID_ARGUMENT — and must NOT destroy the message.
    system.monitor.stage_call(
        core,
        &SmCall::GetMail { mailbox: 0, out_addr: out_addr.into(), out_len: 16 },
    );
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(system.monitor.read_call_result(core).0, status::INVALID_ARGUMENT);

    // The message is still there: the non-destructive probe reports it.
    system.monitor.stage_call(core, &SmCall::PeekMail { mailbox: 0 });
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(
        system.monitor.read_call_result(core),
        (status::OK, 64),
        "peek must still see the message a failed GetMail could not hold"
    );

    // Attempt 2: an adequate buffer retrieves the message intact.
    system.monitor.stage_call(
        core,
        &SmCall::GetMail { mailbox: 0, out_addr: out_addr.into(), out_len: 4096 },
    );
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(system.monitor.read_call_result(core), (status::OK, 64));
    let mut delivered = vec![0u8; 64];
    system.machine.phys_read(out_addr, &mut delivered).unwrap();
    assert_eq!(delivered, message, "the full message must arrive unharmed");

    // And the queue is now empty.
    system.monitor.stage_call(core, &SmCall::PeekMail { mailbox: 0 });
    system.monitor.handle_event(core, TrapCause::EnvironmentCall);
    assert_eq!(system.monitor.read_call_result(core).0, status::MAILBOX_UNAVAILABLE);
}
