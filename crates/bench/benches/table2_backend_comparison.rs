//! Table 2 — Sanctum vs. Keystone backend comparison (paper Section VII):
//! the same enclave workload on both platforms, comparing the architectural
//! cost of the operations where the isolation mechanisms differ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sanctorum_core::api::SmApi;
use sanctorum_core::session::CallerSession;
use sanctorum_bench::boot;
use sanctorum_core::resource::ResourceId;
use sanctorum_enclave::image::EnclaveImage;
use sanctorum_hal::domain::{CoreId, DomainKind};
use sanctorum_os::system::PlatformKind;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_backend_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_backend_comparison");
    for platform in PlatformKind::ALL {
        // Whole enclave lifetime: build, run to completion, tear down.
        group.bench_with_input(
            BenchmarkId::new("enclave_lifetime", platform.name()),
            &platform,
            |b, &platform| {
                let (_system, mut os) = boot(platform);
                let image = EnclaveImage::compute(8, 5_000);
                b.iter(|| {
                    let built = os.build_enclave(&image, 1).unwrap();
                    os.run_thread(&built, built.main_thread(), CoreId::new(0), 100_000)
                        .unwrap();
                    os.teardown_enclave(&built).unwrap();
                })
            },
        );

        // Memory reclamation: the operation whose cost differs most between a
        // partitioned LLC (flush one partition) and a shared LLC (flush all).
        group.bench_with_input(
            BenchmarkId::new("region_clean", platform.name()),
            &platform,
            |b, &platform| {
                let (system, _os) = boot(platform);
                let region = ResourceId::Region(sanctorum_hal::isolation::RegionId::new(3));
                b.iter(|| {
                    system
                        .monitor
                        .block_resource(CallerSession::os(), region)
                        .unwrap();
                    let cost = system
                        .monitor
                        .clean_resource(CallerSession::os(), region)
                        .unwrap();
                    system
                        .monitor
                        .grant_resource(CallerSession::os(), region, DomainKind::Untrusted)
                        .unwrap();
                    cost
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_backend_comparison
}
criterion_main!(benches);
