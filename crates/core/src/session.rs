//! Caller sessions: the capability handle every SM API call is made with.
//!
//! The paper authenticates API callers from the hart state the monitor itself
//! configured (Section V-A): when an environment call traps into the SM, the
//! hart's protection-domain tag *is* the caller identity — no argument the
//! caller controls can forge it. A [`CallerSession`] reifies that
//! authentication step as a value: the event dispatcher mints one per hart
//! per trap via [`crate::monitor::SecurityMonitor::authenticate`], and every
//! [`crate::api::SmApi`] method consumes a session instead of a raw
//! `DomainKind` parameter.
//!
//! Direct Rust callers (the OS model, tests, benches) that bypass the
//! register ABI mint sessions with the harness constructors ([`CallerSession::os`],
//! [`CallerSession::enclave`], [`CallerSession::forged`]). Those constructors
//! play the role the explicit `caller: DomainKind` arguments played before
//! this redesign: they assert, at the simulation boundary, which domain the
//! simulated software is running in. Adversarial tests forge sessions
//! deliberately to check that authorization is enforced *behind* the session,
//! not in front of it.

use sanctorum_hal::domain::{CoreId, DomainKind, EnclaveId};

use crate::error::{SmError, SmResult};

/// An authenticated caller identity, bound to the hart it was minted on.
///
/// Sessions are cheap (`Copy`) and short-lived: the dispatcher mints a fresh
/// one for every trap, so a session never outlives the hart configuration it
/// was authenticated from.
///
/// Sessions are also deliberately **lock-free and immutable**: under
/// fine-grained locking every hart authenticates and authorizes its calls
/// concurrently, so the capability is a pair of plain words copied into the
/// call — it sits entirely outside the monitor's lock hierarchy (see
/// `crate::lockorder`) and can never contribute to contention or deadlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallerSession {
    domain: DomainKind,
    core: CoreId,
}

impl CallerSession {
    /// Harness constructor: a session for the untrusted OS on core 0.
    ///
    /// Use [`CallerSession::os_on`] when the calling core matters (context
    /// switching calls).
    pub const fn os() -> Self {
        Self::os_on(CoreId::new(0))
    }

    /// Harness constructor: a session for the untrusted OS on `core`.
    pub const fn os_on(core: CoreId) -> Self {
        Self {
            domain: DomainKind::Untrusted,
            core,
        }
    }

    /// Harness constructor: a session for enclave `eid` on core 0.
    pub const fn enclave(eid: EnclaveId) -> Self {
        Self::enclave_on(eid, CoreId::new(0))
    }

    /// Harness constructor: a session for enclave `eid` on `core`.
    pub const fn enclave_on(eid: EnclaveId, core: CoreId) -> Self {
        Self {
            domain: DomainKind::Enclave(eid),
            core,
        }
    }

    /// Harness constructor for an arbitrary domain — used by adversarial
    /// tests to present identities the authorization layer must reject.
    pub const fn forged(domain: DomainKind, core: CoreId) -> Self {
        Self { domain, core }
    }

    /// Crate-internal mint from authenticated hart state (the dispatcher's
    /// path; see [`crate::monitor::SecurityMonitor::authenticate`]).
    pub(crate) const fn authenticated(domain: DomainKind, core: CoreId) -> Self {
        Self { domain, core }
    }

    /// The protection domain this session speaks for.
    pub const fn domain(&self) -> DomainKind {
        self.domain
    }

    /// The hart the session was minted on.
    pub const fn core(&self) -> CoreId {
        self.core
    }

    /// Returns `true` if the session belongs to the untrusted OS.
    pub const fn is_os(&self) -> bool {
        matches!(self.domain, DomainKind::Untrusted)
    }

    /// Returns the enclave id if this is an enclave session.
    pub const fn enclave_id(&self) -> Option<EnclaveId> {
        self.domain.enclave_id()
    }

    /// Authorization guard: the call is OS-only.
    ///
    /// # Errors
    ///
    /// Returns [`SmError::Unauthorized`] for non-OS sessions.
    pub fn require_os(&self) -> SmResult<()> {
        if self.is_os() {
            Ok(())
        } else {
            Err(SmError::Unauthorized)
        }
    }

    /// Authorization guard: the call is enclave-only.
    ///
    /// # Errors
    ///
    /// Returns [`SmError::Unauthorized`] for non-enclave sessions.
    pub fn require_enclave(&self) -> SmResult<EnclaveId> {
        self.enclave_id().ok_or(SmError::Unauthorized)
    }
}

impl std::fmt::Display for CallerSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session[{} on {}]", self.domain, self.core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let os = CallerSession::os();
        assert!(os.is_os());
        assert_eq!(os.core(), CoreId::new(0));
        assert!(os.require_os().is_ok());
        assert_eq!(os.require_enclave(), Err(SmError::Unauthorized));

        let e = CallerSession::enclave_on(EnclaveId::new(7), CoreId::new(1));
        assert_eq!(e.enclave_id(), Some(EnclaveId::new(7)));
        assert_eq!(e.core(), CoreId::new(1));
        assert_eq!(e.require_os(), Err(SmError::Unauthorized));
        assert_eq!(e.require_enclave(), Ok(EnclaveId::new(7)));
    }

    #[test]
    fn forged_sessions_carry_any_domain() {
        let f = CallerSession::forged(DomainKind::SecurityMonitor, CoreId::new(0));
        assert_eq!(f.domain(), DomainKind::SecurityMonitor);
        assert!(f.require_os().is_err());
        assert!(f.require_enclave().is_err());
    }

    #[test]
    fn display_names_domain_and_core() {
        let s = CallerSession::os_on(CoreId::new(2));
        assert_eq!(format!("{s}"), "session[untrusted on core2]");
    }
}
