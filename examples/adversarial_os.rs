//! A malicious OS attacks a live enclave in every way the paper's threat
//! model allows, and the monitor / isolation primitive stops each attempt.
//!
//! Run with: `cargo run -p sanctorum-bench --example adversarial_os`

use sanctorum_enclave::image::EnclaveImage;
use sanctorum_os::adversary::run_attack_battery;
use sanctorum_os::os::Os;
use sanctorum_os::system::{PlatformKind, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for platform in PlatformKind::ALL {
        let system = System::boot_small(platform);
        let mut os = Os::new(&system);
        let victim = os.build_enclave(&EnclaveImage::hello(0x5ec2e7), 1)?;
        let rogue = os.build_enclave(&EnclaveImage::compute(1, 10), 1)?;

        println!("== attack battery on the {} backend ==", platform.name());
        let mut all_blocked = true;
        for (name, outcome) in run_attack_battery(&system, &mut os, &victim, &rogue) {
            println!("  {name:<28} {:?}", outcome);
            all_blocked &= outcome.blocked();
        }
        println!(
            "  result: {}",
            if all_blocked {
                "all attacks blocked"
            } else {
                "SECURITY FAILURE"
            }
        );
        println!();
    }
    Ok(())
}
