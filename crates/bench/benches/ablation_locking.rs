//! Ablation A1 — fine-grained locking with transaction failures
//! (paper Section V-A) versus a single global monitor lock: single-caller
//! latency and multi-threaded OS call throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sanctorum_core::api::SmApi;
use sanctorum_core::session::CallerSession;
use sanctorum_bench::boot_with_locking;
use sanctorum_core::error::SmError;
use sanctorum_core::monitor::LockingMode;
use sanctorum_core::resource::ResourceId;
use sanctorum_hal::addr::VirtAddr;
use sanctorum_hal::isolation::RegionId;
use sanctorum_os::system::PlatformKind;
use std::sync::Arc;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(200))
}

fn mode_name(mode: LockingMode) -> &'static str {
    match mode {
        LockingMode::FineGrained => "fine_grained",
        LockingMode::Global => "global_lock",
    }
}

fn bench_locking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_locking");
    for mode in [LockingMode::FineGrained, LockingMode::Global] {
        // Uncontended single-caller latency of a metadata-only API call.
        group.bench_with_input(
            BenchmarkId::new("uncontended_call", mode_name(mode)),
            &mode,
            |b, &mode| {
                let (system, _os) = boot_with_locking(PlatformKind::Sanctum, mode);
                b.iter(|| system.monitor.resource_state(ResourceId::Region(RegionId::new(1))))
            },
        );

        // Contended throughput: four OS threads performing create/delete
        // cycles on disjoint regions. Fine-grained locking lets them proceed
        // in parallel (with occasional retries); the global lock serializes
        // everything.
        group.bench_with_input(
            BenchmarkId::new("contended_4_threads", mode_name(mode)),
            &mode,
            |b, &mode| {
                b.iter_custom(|iters| {
                    let (system, _os) = boot_with_locking(PlatformKind::Sanctum, mode);
                    let monitor = Arc::clone(&system.monitor);
                    // Make regions 1..5 available.
                    for r in 1..5u32 {
                        monitor
                            .block_resource(CallerSession::os(), ResourceId::Region(RegionId::new(r)))
                            .unwrap();
                        monitor
                            .clean_resource(CallerSession::os(), ResourceId::Region(RegionId::new(r)))
                            .unwrap();
                    }
                    let start = std::time::Instant::now();
                    let handles: Vec<_> = (1..5u32)
                        .map(|r| {
                            let monitor = Arc::clone(&monitor);
                            std::thread::spawn(move || {
                                let region = RegionId::new(r);
                                // Retry helper: fine-grained locking reports
                                // conflicts as ConcurrentCall, which callers
                                // are expected to retry.
                                fn retry<T>(mut f: impl FnMut() -> Result<T, SmError>) -> T {
                                    loop {
                                        match f() {
                                            Ok(v) => return v,
                                            Err(SmError::ConcurrentCall) => continue,
                                            Err(other) => panic!("unexpected error: {other:?}"),
                                        }
                                    }
                                }
                                for _ in 0..iters {
                                    let eid = retry(|| {
                                        monitor.create_enclave(
                                            CallerSession::os(),
                                            VirtAddr::new(0x10_0000),
                                            0x10000,
                                            &[region],
                                        )
                                    });
                                    retry(|| monitor.delete_enclave(CallerSession::os(), eid));
                                    retry(|| {
                                        monitor.clean_resource(
                                            CallerSession::os(),
                                            ResourceId::Region(region),
                                        )
                                    });
                                }
                            })
                        })
                        .collect();
                    for handle in handles {
                        handle.join().unwrap();
                    }
                    start.elapsed()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_locking
}
criterion_main!(benches);
