//! Simulated physical memory.

use sanctorum_hal::addr::{PhysAddr, PAGE_SIZE};
use std::fmt;

pub(crate) use sanctorum_hal::fnv::fnv1a;

/// Errors raised by physical-memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The access touches addresses outside the populated DRAM range.
    OutOfRange {
        /// Address that failed.
        addr: PhysAddr,
        /// Length of the failed access.
        len: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, len } => {
                write!(f, "physical access out of range: {addr} (+{len} bytes)")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// A page-granular dirty bitmap over DRAM.
///
/// Every mutating access sets the bit of each page it touches; consumers
/// drain the set bits. Marking is a superset of actual content changes
/// (rewriting a page with identical bytes still marks it), so drains never
/// under-report — the guarantee incremental scanners rely on.
#[derive(Clone, Default)]
struct DirtyBitmap {
    words: Vec<u64>,
    pages: usize,
    /// Fast-path flag: `true` while no bit is set.
    clean: bool,
}

impl DirtyBitmap {
    fn new(pages: usize) -> Self {
        Self {
            words: vec![0u64; pages.div_ceil(64)],
            pages,
            clean: true,
        }
    }

    fn mark_range(&mut self, first_page: usize, last_page: usize) {
        for page in first_page..=last_page {
            self.words[page / 64] |= 1u64 << (page % 64);
        }
        self.clean = false;
    }

    fn mark_all(&mut self) {
        for (index, word) in self.words.iter_mut().enumerate() {
            let valid = self.pages - (index * 64).min(self.pages);
            *word = if valid >= 64 { u64::MAX } else { (1u64 << valid) - 1 };
        }
        self.clean = self.pages == 0;
    }

    /// Calls `f` with every set page index (ascending) and clears the map.
    fn drain(&mut self, mut f: impl FnMut(usize)) {
        if self.clean {
            return;
        }
        for (word_index, word) in self.words.iter_mut().enumerate() {
            let mut bits = *word;
            *word = 0;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                f(word_index * 64 + bit);
                bits &= bits - 1;
            }
        }
        self.clean = true;
    }
}

/// Byte-addressable simulated DRAM starting at a configurable base address.
///
/// Every write (stores, DMA, zeroing) records the touched pages in two
/// page-granular dirty bitmaps: one drained by external consumers through
/// [`PhysMemory::drain_dirty_pages`] (the explorer's incremental secret
/// scan), one private to the incremental [`PhysMemory::digest`] cache. The
/// two have independent cursors, so draining one never hides writes from the
/// other.
///
/// # Examples
///
/// ```
/// use sanctorum_machine::mem::PhysMemory;
/// use sanctorum_hal::addr::PhysAddr;
///
/// let mut mem = PhysMemory::new(PhysAddr::new(0x8000_0000), 64 * 1024);
/// mem.write_u64(PhysAddr::new(0x8000_0100), 0xdead_beef)?;
/// assert_eq!(mem.read_u64(PhysAddr::new(0x8000_0100))?, 0xdead_beef);
/// assert_eq!(mem.drain_dirty_pages(), vec![0]);
/// assert!(mem.drain_dirty_pages().is_empty(), "drained bits are cleared");
/// # Ok::<(), sanctorum_machine::mem::MemError>(())
/// ```
#[derive(Clone)]
pub struct PhysMemory {
    base: PhysAddr,
    bytes: Vec<u8>,
    /// Pages written since the last external drain.
    dirty: DirtyBitmap,
    /// Pages written since the digest cache last refreshed.
    digest_dirty: DirtyBitmap,
    /// Cached per-page digests (see [`PhysMemory::digest`]).
    page_digests: Vec<u64>,
    /// XOR-fold of `page_digests`.
    digest_acc: u64,
}

impl fmt::Debug for PhysMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PhysMemory {{ base: {}, size: {:#x} }}",
            self.base,
            self.bytes.len()
        )
    }
}

impl PhysMemory {
    /// Creates zero-initialized memory of `size` bytes starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not page aligned.
    pub fn new(base: PhysAddr, size: usize) -> Self {
        assert_eq!(size % PAGE_SIZE, 0, "memory size must be page aligned");
        let pages = size / PAGE_SIZE;
        let mut digest_dirty = DirtyBitmap::new(pages);
        // The page-digest cache starts unpopulated; the first digest call
        // folds every page once, then only rewritten pages are re-hashed.
        digest_dirty.mark_all();
        Self {
            base,
            bytes: vec![0u8; size],
            dirty: DirtyBitmap::new(pages),
            digest_dirty,
            page_digests: vec![0u64; pages],
            digest_acc: 0,
        }
    }

    /// Number of 4 KiB pages of populated DRAM.
    pub fn page_count(&self) -> usize {
        self.bytes.len() / PAGE_SIZE
    }

    /// Marks the pages overlapping `[offset, offset + len)` dirty in both
    /// bitmaps. `offset_of` has already validated the range.
    fn mark_dirty(&mut self, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = offset / PAGE_SIZE;
        let last = (offset + len - 1) / PAGE_SIZE;
        self.dirty.mark_range(first, last);
        self.digest_dirty.mark_range(first, last);
    }

    /// Returns the indices (relative to [`PhysMemory::base`]) of every page
    /// written since the previous drain, ascending, and clears the bitmap.
    ///
    /// Marking happens on every mutating access, including rewrites of
    /// identical bytes — the result is a *superset* of the pages whose
    /// contents changed, never a subset.
    pub fn drain_dirty_pages(&mut self) -> Vec<u64> {
        let mut pages = Vec::new();
        self.dirty.drain(|page| pages.push(page as u64));
        pages
    }

    /// Returns the base address of DRAM.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Returns the size of DRAM in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Fingerprints all of DRAM, folded with `seed`. Used by
    /// [`crate::Machine::state_digest`] to fingerprint machine state for
    /// replay-determinism checks.
    ///
    /// The fingerprint is incremental: each page's FNV-1a digest (salted
    /// with its index so identical pages don't cancel) is cached and folded
    /// into an XOR accumulator; a digest call re-hashes only the pages
    /// written since the previous call. The result is a pure function of
    /// `seed` and the current memory contents — cache state never leaks into
    /// the value, so interleaving extra digest calls between identical write
    /// sequences cannot change what is reported.
    pub fn digest(&mut self, seed: u64) -> u64 {
        let (bytes, page_digests, acc) =
            (&self.bytes, &mut self.page_digests, &mut self.digest_acc);
        self.digest_dirty.drain(|page| {
            let salted = fnv1a(0x9e3779b97f4a7c15, &(page as u64).to_le_bytes());
            let fresh = fnv1a(salted, &bytes[page * PAGE_SIZE..(page + 1) * PAGE_SIZE]);
            *acc ^= page_digests[page] ^ fresh;
            page_digests[page] = fresh;
        });
        fnv1a(seed, &self.digest_acc.to_le_bytes())
    }

    /// Returns `true` if the whole `[addr, addr+len)` range is populated.
    pub fn contains(&self, addr: PhysAddr, len: usize) -> bool {
        let Some(offset) = addr.checked_sub(self.base) else {
            return false;
        };
        (offset as usize)
            .checked_add(len)
            .is_some_and(|end| end <= self.bytes.len())
    }

    fn offset_of(&self, addr: PhysAddr, len: usize) -> Result<usize, MemError> {
        if self.contains(addr, len) {
            Ok((addr.as_u64() - self.base.as_u64()) as usize)
        } else {
            Err(MemError::OutOfRange { addr, len })
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not populated.
    pub fn read_bytes(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let offset = self.offset_of(addr, buf.len())?;
        buf.copy_from_slice(&self.bytes[offset..offset + buf.len()]);
        Ok(())
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not populated.
    pub fn write_bytes(&mut self, addr: PhysAddr, data: &[u8]) -> Result<(), MemError> {
        let offset = self.offset_of(addr, data.len())?;
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
        self.mark_dirty(offset, data.len());
        Ok(())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not populated.
    pub fn read_u64(&self, addr: PhysAddr) -> Result<u64, MemError> {
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not populated.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) -> Result<(), MemError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Zeroes the 4 KiB page containing `addr` (used when cleaning memory
    /// before re-allocation to another protection domain).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the page is not populated.
    pub fn zero_page(&mut self, addr: PhysAddr) -> Result<(), MemError> {
        let page_base = addr.align_down();
        let offset = self.offset_of(page_base, PAGE_SIZE)?;
        self.bytes[offset..offset + PAGE_SIZE].fill(0);
        self.mark_dirty(offset, PAGE_SIZE);
        Ok(())
    }

    /// Zeroes an arbitrary page-aligned range.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range is not populated.
    pub fn zero_range(&mut self, addr: PhysAddr, len: usize) -> Result<(), MemError> {
        let offset = self.offset_of(addr, len)?;
        self.bytes[offset..offset + len].fill(0);
        self.mark_dirty(offset, len);
        Ok(())
    }

    /// Reads one page (4 KiB) into a freshly allocated buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the page is not populated.
    pub fn read_page(&self, addr: PhysAddr) -> Result<Vec<u8>, MemError> {
        let mut buf = vec![0u8; PAGE_SIZE];
        self.read_bytes(addr.align_down(), &mut buf)?;
        Ok(buf)
    }

    /// Borrows the page (4 KiB) containing `addr` in place — the zero-copy
    /// variant of [`PhysMemory::read_page`] for scanners that inspect many
    /// pages per step.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the page is not populated.
    pub fn page_slice(&self, addr: PhysAddr) -> Result<&[u8], MemError> {
        let offset = self.offset_of(addr.align_down(), PAGE_SIZE)?;
        Ok(&self.bytes[offset..offset + PAGE_SIZE])
    }

    /// Returns the highest populated physical address plus one.
    pub fn end(&self) -> PhysAddr {
        PhysAddr::new(self.base.as_u64() + self.bytes.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> PhysMemory {
        PhysMemory::new(PhysAddr::new(0x8000_0000), 16 * PAGE_SIZE)
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = mem();
        m.write_bytes(PhysAddr::new(0x8000_0010), b"sanctorum").unwrap();
        let mut buf = [0u8; 9];
        m.read_bytes(PhysAddr::new(0x8000_0010), &mut buf).unwrap();
        assert_eq!(&buf, b"sanctorum");
    }

    #[test]
    fn u64_round_trip() {
        let mut m = mem();
        m.write_u64(PhysAddr::new(0x8000_1000), u64::MAX - 3).unwrap();
        assert_eq!(m.read_u64(PhysAddr::new(0x8000_1000)).unwrap(), u64::MAX - 3);
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut m = mem();
        assert!(m.read_u64(PhysAddr::new(0x7fff_ffff)).is_err());
        assert!(m.write_u64(m.end(), 1).is_err());
        // An access straddling the end is rejected too.
        let last = PhysAddr::new(m.end().as_u64() - 4);
        assert!(m.read_u64(last).is_err());
    }

    #[test]
    fn zero_page_clears_only_that_page() {
        let mut m = mem();
        m.write_u64(PhysAddr::new(0x8000_1008), 0x1111).unwrap();
        m.write_u64(PhysAddr::new(0x8000_2008), 0x2222).unwrap();
        m.zero_page(PhysAddr::new(0x8000_1123)).unwrap();
        assert_eq!(m.read_u64(PhysAddr::new(0x8000_1008)).unwrap(), 0);
        assert_eq!(m.read_u64(PhysAddr::new(0x8000_2008)).unwrap(), 0x2222);
    }

    #[test]
    fn contains_checks_full_range() {
        let m = mem();
        assert!(m.contains(PhysAddr::new(0x8000_0000), 16 * PAGE_SIZE));
        assert!(!m.contains(PhysAddr::new(0x8000_0000), 16 * PAGE_SIZE + 1));
        assert!(!m.contains(PhysAddr::new(0x7fff_f000), PAGE_SIZE));
    }

    #[test]
    fn read_page_returns_full_page() {
        let mut m = mem();
        m.write_bytes(PhysAddr::new(0x8000_3000), &[7u8; 16]).unwrap();
        let page = m.read_page(PhysAddr::new(0x8000_3abc)).unwrap();
        assert_eq!(page.len(), PAGE_SIZE);
        assert_eq!(&page[..16], &[7u8; 16]);
        assert_eq!(page[16], 0);
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn unaligned_size_panics() {
        let _ = PhysMemory::new(PhysAddr::new(0), 100);
    }

    #[test]
    fn dirty_tracking_reports_every_written_page_once() {
        let mut m = mem();
        assert!(m.drain_dirty_pages().is_empty(), "fresh memory is clean");
        m.write_u64(PhysAddr::new(0x8000_1008), 7).unwrap();
        m.write_bytes(PhysAddr::new(0x8000_2ffc), &[1u8; 8]).unwrap(); // straddles 2→3
        m.zero_page(PhysAddr::new(0x8000_5123)).unwrap();
        assert_eq!(m.drain_dirty_pages(), vec![1, 2, 3, 5]);
        assert!(m.drain_dirty_pages().is_empty(), "drain clears the bitmap");
        // Rewriting identical bytes still marks (never under-reports).
        m.write_u64(PhysAddr::new(0x8000_1008), 7).unwrap();
        assert_eq!(m.drain_dirty_pages(), vec![1]);
    }

    #[test]
    fn digest_is_independent_of_cache_state() {
        // Two memories driven identically must agree, regardless of how
        // often digest() was interleaved (exercising different cache paths).
        let mut a = mem();
        let mut b = mem();
        a.write_u64(PhysAddr::new(0x8000_3000), 0x1234).unwrap();
        let _ = a.digest(0); // refresh a's cache mid-sequence
        a.write_u64(PhysAddr::new(0x8000_4000), 0x5678).unwrap();
        b.write_u64(PhysAddr::new(0x8000_3000), 0x1234).unwrap();
        b.write_u64(PhysAddr::new(0x8000_4000), 0x5678).unwrap();
        assert_eq!(a.digest(9), b.digest(9));
        assert_ne!(a.digest(9), a.digest(10), "seed must fold in");
        // Any content change moves the digest; reverting restores it.
        let before = a.digest(0);
        a.write_u64(PhysAddr::new(0x8000_4000), 0x5679).unwrap();
        assert_ne!(a.digest(0), before);
        a.write_u64(PhysAddr::new(0x8000_4000), 0x5678).unwrap();
        assert_eq!(a.digest(0), before);
    }

    #[test]
    fn digest_distinguishes_page_placement() {
        // Identical contents on different pages must not cancel (the
        // per-page salt): swap two distinct pages and the digest moves.
        let mut a = mem();
        a.write_u64(PhysAddr::new(0x8000_1000), 0xaaaa).unwrap();
        a.write_u64(PhysAddr::new(0x8000_2000), 0xbbbb).unwrap();
        let mut b = mem();
        b.write_u64(PhysAddr::new(0x8000_1000), 0xbbbb).unwrap();
        b.write_u64(PhysAddr::new(0x8000_2000), 0xaaaa).unwrap();
        assert_ne!(a.digest(0), b.digest(0));
    }

    #[test]
    fn external_drain_does_not_perturb_digest() {
        let mut a = mem();
        let mut b = mem();
        for m in [&mut a, &mut b] {
            m.write_u64(PhysAddr::new(0x8000_6000), 0xfeed).unwrap();
        }
        let _ = a.drain_dirty_pages(); // external cursor consumed on a only
        assert_eq!(a.digest(0), b.digest(0));
    }
}
