//! The digest-pruned bounded BFS driver.
//!
//! Breadth-first order is a correctness feature, not a traversal detail:
//! the first violating edge found lies in the shallowest violating layer,
//! so the reported counterexample is minimal-length over the searched
//! alphabet *by construction* (an optional deletion pass then shrinks it
//! further). Layers are expanded in parallel, but the search result is a
//! pure function of the configuration: expansion reads a visited set
//! frozen at the previous layer, new states are committed sequentially in
//! canonical (parent, child) order between layers, and the winning
//! violation is the canonically first one of its layer.

use crate::{state_key, ModelConfig};
use sanctorum_core::lockorder::{rank, OrderedMutex};
use sanctorum_explorer::trace::{format_trace, TracedOp};
use sanctorum_explorer::{CheckedWorld, Violation};
use sanctorum_hal::domain::CoreId;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A violating op trace, in the explorer's replayable form.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The ops up to and including the violating one.
    pub trace: Vec<TracedOp>,
    /// The violation's [`Violation::kind`] tag.
    pub kind: &'static str,
    /// Human-readable violation description.
    pub violation: String,
}

impl Counterexample {
    /// The trace in the committed-corpus text format.
    pub fn to_text(&self) -> String {
        format_trace(&self.trace)
    }
}

/// What one bounded search covered and found.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Distinct states visited (the root included).
    pub states: usize,
    /// Op applications performed (edges, including rejected ones).
    pub edges: u64,
    /// Deepest layer that contained a state.
    pub depth_reached: usize,
    /// Whether every reachable state within the depth bound was visited.
    /// `false` means the state cap cut the search short and absence of a
    /// violation is *not* a verification result.
    pub complete: bool,
    /// Wall time of the whole search.
    pub wall: Duration,
    /// The canonically first minimal violation, if any was reachable.
    pub violation: Option<Counterexample>,
}

impl SearchOutcome {
    /// States per second — the bench gate's throughput metric.
    pub fn states_per_second(&self) -> f64 {
        self.states as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// One node of the search: its op path and the state key it reaches.
/// Worlds are not stored — expansion re-materializes them by replay (see
/// the crate docs for the cost model).
struct Node {
    trace: Vec<TracedOp>,
    key: u128,
}

/// What expanding one node produced.
struct Expansion {
    /// Novel child states in canonical child order (already filtered
    /// against the frozen visited set and the node's own siblings).
    children: Vec<Node>,
    /// The node's first violating edge, if any.
    violation: Option<Counterexample>,
    /// Edges applied.
    edges: u64,
}

/// Boots a fresh world and replays `trace` onto it. Prefixes come from
/// non-violating edges of earlier layers, and the whole stack is
/// deterministic, so a violation during replay is a broken-determinism bug
/// worth crashing on.
fn materialize(config: &ModelConfig, trace: &[TracedOp]) -> CheckedWorld {
    let mut world = CheckedWorld::boot(config.platform, config.machine.clone(), config.weaken);
    for step in trace {
        world
            .step(CoreId::new(step.hart), &step.op)
            .unwrap_or_else(|violation| {
                panic!("non-violating prefix replayed to a violation: {violation}")
            });
    }
    world
}

/// Replays `trace` on a fresh world, returning the first violation and its
/// step index. This is the checker-side replay used by shrinking and by
/// tests pinning counterexamples; `Explorer::probe` offers the same
/// semantics through the explorer's differential pair.
pub fn reproduce(config: &ModelConfig, trace: &[TracedOp]) -> Option<(usize, Violation)> {
    let mut world = CheckedWorld::boot(config.platform, config.machine.clone(), config.weaken);
    for (index, step) in trace.iter().enumerate() {
        if let Err(violation) = world.step(CoreId::new(step.hart), &step.op) {
            return Some((index, violation));
        }
    }
    None
}

/// Greedy deletion shrink: drop any op whose removal still reproduces the
/// same violation kind, truncating at the (possibly earlier) violating
/// step. Abstract selectors make every subsequence executable, so deletion
/// is always sound.
fn shrink(config: &ModelConfig, counterexample: Counterexample) -> Counterexample {
    let mut best = counterexample;
    loop {
        let mut reduced = false;
        let mut index = 0;
        while index < best.trace.len() && best.trace.len() > 1 {
            let mut candidate = best.trace.clone();
            candidate.remove(index);
            match reproduce(config, &candidate) {
                Some((step, violation)) if violation.kind() == best.kind => {
                    candidate.truncate(step + 1);
                    best = Counterexample {
                        trace: candidate,
                        kind: best.kind,
                        violation: violation.to_string(),
                    };
                    reduced = true;
                }
                _ => index += 1,
            }
        }
        if !reduced {
            return best;
        }
    }
}

/// Expands one node: materializes its state, applies every op of its
/// alphabet, and collects novel children and the first violation.
///
/// The key throughput trick lives here: an edge that leaves the state key
/// unchanged (a rejected or no-op call) leaves the world reusable for the
/// next sibling, so only state-*changing* edges force a fresh
/// boot-and-replay.
fn expand(
    config: &ModelConfig,
    visited: &OrderedMutex<HashSet<u128>>,
    node: &Node,
) -> Expansion {
    let mut world = materialize(config, &node.trace);
    let candidates = config.alphabet(&world.world);
    let mut children = Vec::new();
    let mut violation = None;
    let mut edges = 0u64;
    let mut clean = true;
    let mut local_seen: HashSet<u128> = HashSet::new();
    local_seen.insert(node.key);
    for (hart, op) in candidates {
        if !clean {
            world = materialize(config, &node.trace);
            clean = true;
        }
        edges += 1;
        match world.step(CoreId::new(hart), &op) {
            Err(found) => {
                let mut trace = node.trace.clone();
                trace.push(TracedOp { hart, op });
                violation = Some(Counterexample {
                    trace,
                    kind: found.kind(),
                    violation: found.to_string(),
                });
                // Deeper edges of this node cannot beat a violation in this
                // very layer; stop expanding it.
                break;
            }
            Ok(_) => {
                let key = state_key(&world.world);
                if key == node.key {
                    // The op was rejected or observationally idle: the
                    // world still *is* the node's state, reuse it.
                    continue;
                }
                clean = false;
                if local_seen.insert(key) && !visited.lock().contains(&key) {
                    let mut trace = node.trace.clone();
                    trace.push(TracedOp { hart, op });
                    children.push(Node { trace, key });
                }
            }
        }
    }
    Expansion { children, violation, edges }
}

/// Runs the bounded search described by `config`. See the module docs for
/// the determinism argument; the short version is that `threads` affects
/// wall time only.
pub fn search(config: &ModelConfig) -> SearchOutcome {
    let start = Instant::now();
    // Shared across the layer-expansion workers at rank `MODEL_VISITED`
    // (above every monitor rank — workers consult it only after the
    // expanded state's monitor locks are released): reads during expansion
    // see the set frozen at the previous layer, inserts happen only in the
    // sequential merge between layers.
    let visited: OrderedMutex<HashSet<u128>> =
        OrderedMutex::new(rank::MODEL_VISITED, HashSet::new());

    let root_key = state_key(&materialize(config, &[]).world);
    visited.lock().insert(root_key);
    let mut frontier = vec![Node { trace: Vec::new(), key: root_key }];
    let mut states = 1usize;
    let mut edges = 0u64;
    let mut depth_reached = 0usize;
    let mut complete = true;
    let mut violation: Option<Counterexample> = None;

    'layers: for depth in 1..=config.max_depth {
        if frontier.is_empty() {
            break;
        }
        // Parallel expansion: workers claim frontier indices; results land
        // in per-node slots so the merge below runs in canonical order.
        let results: Vec<Mutex<Option<Expansion>>> =
            (0..frontier.len()).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let workers = config.threads.clamp(1, frontier.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(node) = frontier.get(index) else { break };
                    let expansion = expand(config, &visited, node);
                    *results[index].lock().unwrap() = Some(expansion);
                });
            }
        });

        let mut next = Vec::new();
        for slot in results {
            let expansion = slot.into_inner().unwrap().expect("every slot was expanded");
            edges += expansion.edges;
            // The canonically first violation of the shallowest violating
            // layer wins — parents are merged in frontier order and each
            // parent reports only its first violating edge.
            if violation.is_none() {
                violation = expansion.violation;
            }
            if violation.is_some() {
                continue;
            }
            for child in expansion.children {
                if states >= config.max_states {
                    complete = false;
                    break;
                }
                // Cross-parent duplicates within this layer collide here.
                if visited.lock().insert(child.key) {
                    states += 1;
                    next.push(child);
                }
            }
        }
        if !next.is_empty() || violation.is_some() {
            depth_reached = depth;
        }
        if violation.is_some() {
            break 'layers;
        }
        frontier = next;
    }

    let violation = violation.map(|counterexample| {
        if config.shrink {
            shrink(config, counterexample)
        } else {
            counterexample
        }
    });
    SearchOutcome {
        states,
        edges,
        depth_reached,
        complete,
        wall: start.elapsed(),
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sanctorum_os::ops::{ImageKind, Op};

    /// A tiny configuration every unit test can afford.
    fn tiny(depth: usize) -> ModelConfig {
        ModelConfig {
            max_depth: depth,
            labels: Some(&["build", "teardown", "tick"]),
            build_kinds: &[ImageKind::Hello],
            ..ModelConfig::default()
        }
    }

    #[test]
    fn tiny_alphabet_search_is_exhaustive_and_clean() {
        let outcome = search(&tiny(3));
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete);
        assert_eq!(outcome.depth_reached, 3);
        // build/teardown/tick over ≤2 enclaves and 2 harts: a handful of
        // states per layer, but strictly more than a single chain.
        assert!(outcome.states > 6, "only {} states", outcome.states);
        assert!(outcome.edges > outcome.states as u64);
    }

    #[test]
    fn search_is_deterministic_across_thread_counts() {
        let single = search(&ModelConfig { threads: 1, ..tiny(3) });
        let parallel = search(&ModelConfig { threads: 4, ..tiny(3) });
        assert_eq!(single.states, parallel.states);
        assert_eq!(single.edges, parallel.edges);
        assert_eq!(single.depth_reached, parallel.depth_reached);
    }

    #[test]
    fn no_op_edges_do_not_create_states() {
        // Teardown/tick-only alphabet on an empty world: teardown is never
        // enabled, tick toggles the pending-interrupt bit per hart. The
        // reachable space is exactly the interrupt-queue contents.
        let outcome = search(&ModelConfig {
            labels: Some(&["tick"]),
            max_depth: 4,
            ..ModelConfig::default()
        });
        assert!(outcome.violation.is_none());
        assert!(outcome.complete);
        // Tick accumulates queued interrupts, so states grow linearly with
        // depth (per hart combination), not exponentially.
        assert!(
            outcome.states <= 1 + 2 * 4 + 4 * 4,
            "tick-only space exploded: {} states",
            outcome.states
        );
    }

    #[test]
    fn reproduce_reports_the_violating_step() {
        let config = ModelConfig::default();
        // A clean trace reproduces to None.
        let trace = vec![TracedOp { hart: 0, op: Op::Build { kind: ImageKind::Hello, param: 0 } }];
        assert!(reproduce(&config, &trace).is_none());
    }
}
