//! Fig. 4 — the thread lifecycle: enclave enter/exit round trips and the
//! asynchronous enclave exit (AEX) path, per platform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sanctorum_core::api::SmApi;
use sanctorum_core::session::CallerSession;
use sanctorum_bench::boot_with_enclave;
use sanctorum_hal::domain::CoreId;
use sanctorum_os::system::PlatformKind;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_thread_aex(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_thread_aex");
    for platform in PlatformKind::ALL {
        let (system, _os, built) = boot_with_enclave(platform);
        let core = CoreId::new(0);
        let tid = built.main_thread();

        group.bench_with_input(
            BenchmarkId::new("enter_exit_round_trip", platform.name()),
            &platform,
            |b, _| {
                b.iter(|| {
                    system
                        .monitor
                        .enter_enclave(CallerSession::os_on(core), built.eid, tid)
                        .unwrap();
                    system
                        .monitor
                        .exit_enclave(CallerSession::enclave_on(built.eid, core))
                        .unwrap()
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("enter_aex_resume", platform.name()),
            &platform,
            |b, _| {
                b.iter(|| {
                    system
                        .monitor
                        .enter_enclave(CallerSession::os_on(core), built.eid, tid)
                        .unwrap();
                    system.monitor.asynchronous_enclave_exit(core).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_thread_aex
}
criterion_main!(benches);
